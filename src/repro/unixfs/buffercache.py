"""The kernel buffer cache.

4.2 BSD dedicates about 10% of main memory (a few hundred kilobytes) to a
least-recently-used cache of disk blocks; the paper's Section 6 credits it
with roughly halving disk traffic, and Section 6.4 compares against the
measured ~15% miss ratio of Leffler et al.  This module is the *live*
buffer cache inside the simulated kernel — it runs during workload
generation and supplies an in-vivo baseline.  The trace-driven cache
simulator in :mod:`repro.cache` is a separate, richer implementation
(write policies, block-size sweeps) that replays traces offline, as the
paper's simulator did.

Blocks are keyed by ``(file_id, block_index)``: the cache is logical, like
the paper's simulations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .errors import EINVAL

__all__ = ["BufferCache", "BufferCacheStats"]


@dataclass
class BufferCacheStats:
    """Counters for the live kernel buffer cache."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0  # dirty blocks pushed to disk (eviction or sync)
    invalidations: int = 0  # blocks dropped by unlink/truncate

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def miss_ratio(self) -> float:
        """Disk reads + writebacks over logical block accesses."""
        if not self.accesses:
            return 0.0
        return (self.read_misses + self.writebacks) / self.accesses

    @property
    def read_hit_ratio(self) -> float:
        reads = self.read_hits + self.read_misses
        return self.read_hits / reads if reads else 0.0


class BufferCache:
    """LRU cache of (file_id, block) with dirty bits and periodic sync.

    The kernel invokes :meth:`sync` every 30 seconds (the classical
    ``update`` daemon); eviction of a dirty block also costs a writeback.
    A per-file index keeps unlink/truncate invalidation O(blocks dropped)
    rather than O(cache size).
    """

    def __init__(self, capacity_bytes: int = 400 * 1024, block_size: int = 4096):
        if capacity_bytes < block_size:
            raise EINVAL("buffer cache smaller than one block")
        self.block_size = block_size
        self.capacity_blocks = capacity_bytes // block_size
        self.stats = BufferCacheStats()
        # key -> dirty flag; insertion order is LRU order.
        self._lru: OrderedDict[tuple[int, int], bool] = OrderedDict()
        # file_id -> set of block indices currently cached.
        self._by_file: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self._lru)

    def _drop(self, key: tuple[int, int]) -> bool:
        """Remove *key*; returns its dirty flag."""
        dirty = self._lru.pop(key)
        blocks = self._by_file[key[0]]
        blocks.discard(key[1])
        if not blocks:
            del self._by_file[key[0]]
        return dirty

    def _insert(self, key: tuple[int, int], dirty: bool) -> None:
        self._lru[key] = dirty
        self._by_file.setdefault(key[0], set()).add(key[1])
        while len(self._lru) > self.capacity_blocks:
            victim = next(iter(self._lru))
            if self._drop(victim):
                self.stats.writebacks += 1

    def access(self, file_id: int, offset: int, length: int, write: bool) -> None:
        """Run one logical transfer through the cache.

        The byte range is split into block accesses; each is a hit or a miss
        and, for writes, marks the block dirty.
        """
        if length <= 0:
            return
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        for block in range(first, last + 1):
            key = (file_id, block)
            if key in self._lru:
                self._lru.move_to_end(key)
                if write:
                    self._lru[key] = True
                    self.stats.write_hits += 1
                else:
                    self.stats.read_hits += 1
            else:
                if write:
                    self.stats.write_misses += 1
                else:
                    self.stats.read_misses += 1
                self._insert(key, write)

    def invalidate_file(self, file_id: int, from_block: int = 0) -> None:
        """Drop a file's blocks (unlink, or truncate past *from_block*).

        Dirty blocks of a deleted file are discarded without a writeback —
        the effect the paper's delayed-write results hinge on.
        """
        blocks = self._by_file.get(file_id)
        if not blocks:
            return
        doomed = [b for b in blocks if b >= from_block]
        for block in doomed:
            self._drop((file_id, block))
            self.stats.invalidations += 1

    def sync(self) -> int:
        """Write all dirty blocks back; returns the number written."""
        written = 0
        for key, dirty in self._lru.items():
            if dirty:
                self._lru[key] = False
                written += 1
        self.stats.writebacks += written
        return written
