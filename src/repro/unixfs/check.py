"""File-system consistency checking (a miniature ``fsck``).

Walks the directory tree from the root and cross-checks every kernel
structure against every other: link counts against directory references,
inode sizes against allocator extents, the open-file table against the
inode table, and the allocator's free-space accounting against the sum of
extents.  The workload tests run this after multi-hour syntheses, so any
bookkeeping drift in the substrate surfaces as a named inconsistency
rather than as a mysteriously wrong Figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .filesystem import FileSystem
from .inode import FileType

__all__ = ["FsckReport", "fsck"]


@dataclass
class FsckReport:
    """Result of :func:`fsck`."""

    inodes_checked: int = 0
    directories: int = 0
    regular_files: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, message: str) -> None:
        self.problems.append(message)

    def __str__(self) -> str:
        status = "clean" if self.ok else f"{len(self.problems)} problem(s)"
        return (
            f"fsck: {status}; {self.inodes_checked} inodes "
            f"({self.directories} dirs, {self.regular_files} files)"
        )


def fsck(fs: FileSystem) -> FsckReport:
    """Check *fs* for structural consistency."""
    report = FsckReport()

    # Pass 1: walk the tree, counting directory references per inode.
    refs: dict[int, int] = {}
    seen_dirs: set[int] = set()
    stack = [fs.root_inum]
    while stack:
        inum = stack.pop()
        if inum in seen_dirs:
            report.add(f"directory inode {inum} reachable twice (cycle?)")
            continue
        seen_dirs.add(inum)
        try:
            directory = fs.inodes.get(inum)
        except Exception:
            report.add(f"directory inode {inum} referenced but missing")
            continue
        for name, child_inum in directory.entries.items():
            if child_inum not in fs.inodes:
                report.add(
                    f"dangling entry {name!r} in dir {inum} -> inode {child_inum}"
                )
                continue
            child = fs.inodes.get(child_inum)
            refs[child_inum] = refs.get(child_inum, 0) + 1
            if child.is_dir:
                if refs[child_inum] > 1:
                    report.add(
                        f"directory inode {child_inum} has multiple parents"
                    )
                stack.append(child_inum)

    # Pass 2: every inode's nlink and size/extent agree with reality.
    open_inums = {entry.inode.inum for entry in fs.fds.open_files()}
    allocated = 0
    for inode in fs.inodes.live_inodes():
        report.inodes_checked += 1
        if inode.is_dir:
            report.directories += 1
            if inode.inum != fs.root_inum and inode.inum not in refs:
                report.add(f"orphan directory inode {inode.inum}")
            continue
        report.regular_files += 1
        observed = refs.get(inode.inum, 0)
        if observed != inode.nlink:
            if inode.nlink == 0 and inode.inum in open_inums:
                pass  # unlinked-but-open: legitimate
            else:
                report.add(
                    f"inode {inode.inum}: nlink {inode.nlink} but "
                    f"{observed} directory reference(s)"
                )
        if inode.nlink == 0 and inode.inum not in open_inums:
            report.add(f"inode {inode.inum}: dead (nlink 0, not open) but present")
        extent = fs._extents.get(inode.inum)
        extent_bytes = 0
        if extent is not None:
            extent_bytes = (
                len(extent.blocks) * fs.geometry.block_size
                + extent.tail_frags * fs.geometry.frag_size
            )
        want = fs.geometry.allocated_bytes(inode.size)
        if extent_bytes != want:
            report.add(
                f"inode {inode.inum}: size {inode.size} needs {want} allocated "
                f"bytes but extent holds {extent_bytes}"
            )
        allocated += extent_bytes

    # Pass 3: allocator global accounting matches the sum of extents.
    if allocated != fs.allocator.allocated_bytes:
        report.add(
            f"allocator reports {fs.allocator.allocated_bytes} bytes in use "
            f"but extents sum to {allocated}"
        )

    # Pass 4: no extents for unknown inodes.
    for inum in fs._extents:
        if inum not in fs.inodes:
            extent = fs._extents[inum]
            if extent.blocks or extent.tail_frags:
                report.add(f"extent for missing inode {inum} still holds space")

    # Pass 5: every open file points at a live inode.
    for entry in fs.fds.open_files():
        if entry.inode.inum not in fs.inodes:
            report.add(f"open fd {entry.fd} references missing inode")

    return report
