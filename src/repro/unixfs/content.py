"""File content storage strategies.

The trace study only needs file *sizes and positions*, so the workload
engine runs the file system with a :class:`NullContentStore` that tracks
sizes without holding bytes (a multi-gigabyte synthetic workload then costs
no memory).  Tests and examples that want real data use a
:class:`MemoryContentStore`, which behaves like a RAM disk.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["ContentStore", "NullContentStore", "MemoryContentStore"]


class ContentStore(ABC):
    """Byte storage keyed by inode number."""

    @abstractmethod
    def read(self, inum: int, offset: int, length: int, file_size: int) -> bytes:
        """Return up to *length* bytes at *offset* (bounded by *file_size*)."""

    @abstractmethod
    def write(self, inum: int, offset: int, data: bytes) -> None:
        """Store *data* at *offset*, extending as needed."""

    @abstractmethod
    def truncate(self, inum: int, length: int) -> None:
        """Discard content beyond *length*."""

    @abstractmethod
    def remove(self, inum: int) -> None:
        """Discard all content for *inum*."""


class NullContentStore(ContentStore):
    """Size-only storage: reads return zero bytes, writes are discarded.

    This is what the kernel of a trace *simulation* needs — the tracer never
    looks at data, only at positions.
    """

    def read(self, inum: int, offset: int, length: int, file_size: int) -> bytes:
        available = max(0, min(length, file_size - offset))
        return b"\x00" * available

    def write(self, inum: int, offset: int, data: bytes) -> None:
        pass

    def truncate(self, inum: int, length: int) -> None:
        pass

    def remove(self, inum: int) -> None:
        pass


class MemoryContentStore(ContentStore):
    """Real in-memory byte storage (a RAM disk)."""

    def __init__(self):
        self._data: dict[int, bytearray] = {}

    def read(self, inum: int, offset: int, length: int, file_size: int) -> bytes:
        buf = self._data.get(inum, bytearray())
        end = min(offset + length, file_size)
        if offset >= end:
            return b""
        chunk = bytes(buf[offset:end])
        # A file extended by truncate-up or sparse write reads as zeros.
        if len(chunk) < end - offset:
            chunk += b"\x00" * (end - offset - len(chunk))
        return chunk

    def write(self, inum: int, offset: int, data: bytes) -> None:
        buf = self._data.setdefault(inum, bytearray())
        if len(buf) < offset:
            buf.extend(b"\x00" * (offset - len(buf)))
        buf[offset : offset + len(data)] = data

    def truncate(self, inum: int, length: int) -> None:
        buf = self._data.get(inum)
        if buf is not None and len(buf) > length:
            del buf[length:]

    def remove(self, inum: int) -> None:
        self._data.pop(inum, None)

    def bytes_held(self) -> int:
        """Total bytes currently stored (for tests and memory accounting)."""
        return sum(len(b) for b in self._data.values())
