"""Error hierarchy for the simulated file system.

Mirrors the UNIX errno values a 4.2 BSD syscall layer returns.  Each error
class is named after the errno it models, so call sites read like kernel
code (``raise ENOENT(path)``) and tests can assert on specific conditions.
"""

from __future__ import annotations

__all__ = [
    "UnixFsError",
    "ENOENT",
    "EEXIST",
    "EBADF",
    "EISDIR",
    "ENOTDIR",
    "ENOTEMPTY",
    "EINVAL",
    "ENOSPC",
    "EACCES",
    "EMFILE",
    "EXDEV",
]


class UnixFsError(Exception):
    """Base class for all simulated file-system errors."""

    errno_name = "EIO"

    def __init__(self, detail: str = ""):
        self.detail = detail
        super().__init__(f"[{self.errno_name}] {detail}" if detail else self.errno_name)


class ENOENT(UnixFsError):
    """No such file or directory."""

    errno_name = "ENOENT"


class EEXIST(UnixFsError):
    """File exists."""

    errno_name = "EEXIST"


class EBADF(UnixFsError):
    """Bad file descriptor."""

    errno_name = "EBADF"


class EISDIR(UnixFsError):
    """Is a directory."""

    errno_name = "EISDIR"


class ENOTDIR(UnixFsError):
    """Not a directory."""

    errno_name = "ENOTDIR"


class ENOTEMPTY(UnixFsError):
    """Directory not empty."""

    errno_name = "ENOTEMPTY"


class EINVAL(UnixFsError):
    """Invalid argument."""

    errno_name = "EINVAL"


class ENOSPC(UnixFsError):
    """No space left on device."""

    errno_name = "ENOSPC"


class EACCES(UnixFsError):
    """Permission denied."""

    errno_name = "EACCES"


class EMFILE(UnixFsError):
    """Too many open files."""

    errno_name = "EMFILE"


class EXDEV(UnixFsError):
    """Cross-device link (rename across file systems)."""

    errno_name = "EXDEV"
