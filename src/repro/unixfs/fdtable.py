"""The open-file table.

Every successful ``open`` creates an open-file entry holding the access
mode and the current byte offset; the descriptor the caller receives
indexes this table.  Each entry also carries the tracer's ``open_id`` so
that close and seek events can be correlated with their open (paper
Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import EBADF, EMFILE
from .inode import Inode
from ..trace.records import AccessMode

__all__ = ["OpenFile", "FdTable"]


@dataclass
class OpenFile:
    """One open-file-table entry."""

    fd: int
    inode: Inode
    mode: AccessMode
    open_id: int
    uid: int
    offset: int = 0
    open_time: float = 0.0
    # Statistics the kernel keeps per open (handy for tests):
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    # Number of descriptors sharing this entry (dup raises it).
    refs: int = 1


class FdTable:
    """Allocates descriptors and maps them to open files.

    The table is global (the simulation does not model per-process
    descriptor spaces; the paper's open ids are global too).  ``max_open``
    bounds simultaneous opens like the kernel's file-table size.
    """

    def __init__(self, max_open: int = 100_000):
        self.max_open = max_open
        self._open: dict[int, OpenFile] = {}
        self._next_fd = 3  # 0,1,2 reserved out of respect for tradition

    def __len__(self) -> int:
        return len(self._open)

    def insert(self, entry: OpenFile) -> None:
        if len(self._open) >= self.max_open:
            raise EMFILE(f"{self.max_open} files already open")
        self._open[entry.fd] = entry

    def insert_alias(self, fd: int, entry: OpenFile) -> None:
        """Map a second descriptor onto an existing entry (``dup``)."""
        if len(self._open) >= self.max_open:
            raise EMFILE(f"{self.max_open} files already open")
        entry.refs += 1
        self._open[fd] = entry

    def next_fd(self) -> int:
        fd = self._next_fd
        self._next_fd += 1
        return fd

    def get(self, fd: int) -> OpenFile:
        try:
            return self._open[fd]
        except KeyError:
            raise EBADF(f"fd {fd}") from None

    def remove(self, fd: int) -> tuple[OpenFile, bool]:
        """Drop *fd*; returns (entry, was_last_reference)."""
        try:
            entry = self._open.pop(fd)
        except KeyError:
            raise EBADF(f"fd {fd}") from None
        entry.refs -= 1
        return entry, entry.refs == 0

    def open_files(self) -> list[OpenFile]:
        return list(self._open.values())

    def opens_of_inode(self, inum: int) -> list[OpenFile]:
        return [f for f in self._open.values() if f.inode.inum == inum]
