"""The system-call layer of the simulated 4.2 BSD file system.

:class:`FileSystem` ties the substrate together: pathname resolution with a
directory name lookup cache, an inode table with an in-core inode cache, an
FFS-style block/fragment allocator, an open-file table, a live kernel
buffer cache with a 30-second ``sync`` daemon, and the kernel trace hook
that logs the paper's Table II events (and, by design, nothing at read or
write time).

The interface mirrors the 4.2 BSD syscalls the paper traced::

    fs = FileSystem(tracer=KernelTracer())
    fd = fs.open("/tmp/a.out", AccessMode.WRITE, uid=7, create=True)
    fs.write(fd, 8192)             # or real bytes with a MemoryContentStore
    fs.close(fd)
    fs.execve("/tmp/a.out", uid=7)
    fs.unlink("/tmp/a.out")

Write amounts may be given as byte strings or as plain integers; the latter
is what the workload engine uses (no data need exist for a trace study —
only sizes and positions matter).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Union

from ..clock import Clock
from ..trace.records import AccessMode
from .allocator import BlockAllocator, Extent
from .buffercache import BufferCache
from .content import ContentStore, NullContentStore
from .errors import (
    EBADF,
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
)
from .fdtable import FdTable, OpenFile
from .geometry import DEFAULT_GEOMETRY, Geometry
from .inode import FileType, Inode, InodeCache, InodeTable
from .namei import Dnlc, NameResolver, parent_path
from .tracer import NullTracer

__all__ = ["FileSystem", "Whence", "StatResult"]


class Whence(enum.IntEnum):
    """``lseek`` origin, as in <unistd.h>."""

    SET = 0
    CUR = 1
    END = 2


@dataclass(frozen=True)
class StatResult:
    """What ``stat`` returns."""

    inum: int
    file_id: int
    type: FileType
    size: int
    uid: int
    nlink: int
    ctime: float
    mtime: float
    atime: float

    @property
    def is_dir(self) -> bool:
        return self.type is FileType.DIRECTORY


class FileSystem:
    """A simulated 4.2 BSD file system with a kernel trace hook."""

    def __init__(
        self,
        geometry: Geometry = DEFAULT_GEOMETRY,
        clock: Union[Clock, Callable[[], float], None] = None,
        tracer: NullTracer | None = None,
        content: ContentStore | None = None,
        buffer_cache: BufferCache | None = None,
        inode_cache: InodeCache | None = None,
        dnlc: Dnlc | None = None,
        sync_interval: float = 30.0,
    ):
        self.geometry = geometry
        self.clock = clock if clock is not None else Clock()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.content = content if content is not None else NullContentStore()
        self.buffer_cache = (
            buffer_cache
            if buffer_cache is not None
            else BufferCache(block_size=geometry.block_size)
        )
        self.inode_cache = inode_cache if inode_cache is not None else InodeCache()
        self.allocator = BlockAllocator(geometry)
        self.inodes = InodeTable()
        self.fds = FdTable()
        self.sync_interval = sync_interval
        self.syscall_counts: dict[str, int] = {}
        self.total_bytes_read = 0
        self.total_bytes_written = 0
        self._extents: dict[int, Extent] = {}
        self._unlinked_open: set[int] = set()  # inums unlinked but still open
        self._last_sync = 0.0

        root = self.inodes.allocate(FileType.DIRECTORY, uid=0, now=self._now())
        self.root_inum = root.inum
        self.resolver = NameResolver(self.inodes, root.inum, dnlc=dnlc)

    # -- internals -------------------------------------------------------------

    def _now(self) -> float:
        return self.clock() if callable(self.clock) else self.clock.now()

    def _count(self, syscall: str) -> None:
        self.syscall_counts[syscall] = self.syscall_counts.get(syscall, 0) + 1
        now = self._now()
        if now - self._last_sync >= self.sync_interval:
            self._last_sync = now
            self.buffer_cache.sync()

    def _extent(self, inum: int) -> Extent:
        extent = self._extents.get(inum)
        if extent is None:
            extent = Extent()
            self._extents[inum] = extent
        return extent

    def _set_size(self, inode: Inode, new_size: int) -> None:
        """Resize a regular file's data, keeping the allocator honest."""
        self.allocator.resize(self._extent(inode.inum), new_size)
        inode.size = new_size

    def _release_inode(self, inode: Inode) -> None:
        """Free a dead inode's data (last link gone and no opens left)."""
        self.allocator.resize(self._extent(inode.inum), 0)
        self._extents.pop(inode.inum, None)
        self.content.remove(inode.inum)
        self.inode_cache.invalidate(inode.inum)
        self.buffer_cache.invalidate_file(inode.file_id)
        self.inodes.free(inode.inum)
        self._unlinked_open.discard(inode.inum)

    def _lookup_file(self, path: str) -> Inode:
        inode = self.resolver.resolve(path)
        self.inode_cache.touch(inode.inum)
        return inode

    # -- directory operations ----------------------------------------------------

    def mkdir(self, path: str, uid: int = 0) -> None:
        """Create a directory (parent must exist)."""
        self._count("mkdir")
        parent, name = self.resolver.resolve_parent(path)
        if name in parent.entries:
            raise EEXIST(path)
        now = self._now()
        child = self.inodes.allocate(FileType.DIRECTORY, uid=uid, now=now)
        parent.entries[name] = child.inum
        parent.mtime = now
        parent.size = parent.dir_size()
        self.resolver.dnlc.enter(parent.inum, name, child.inum)

    def makedirs(self, path: str, uid: int = 0) -> None:
        """Create a directory and any missing ancestors."""
        components: list[str] = []
        for part in path.strip("/").split("/"):
            if not part:
                continue
            components.append(part)
            prefix = "/" + "/".join(components)
            if not self.resolver.exists(prefix):
                self.mkdir(prefix, uid=uid)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        self._count("rmdir")
        inode = self.resolver.resolve(path)
        if not inode.is_dir:
            raise ENOTDIR(path)
        if inode.inum == self.root_inum:
            raise EINVAL("cannot remove the root directory")
        if inode.entries:
            raise ENOTEMPTY(path)
        parent, name = self.resolver.resolve_parent(path)
        del parent.entries[name]
        parent.mtime = self._now()
        parent.size = parent.dir_size()
        self.resolver.dnlc.remove(parent.inum, name)
        self.inode_cache.invalidate(inode.inum)
        self.inodes.free(inode.inum)

    def listdir(self, path: str) -> list[str]:
        """Names in a directory, sorted."""
        inode = self.resolver.resolve(path)
        if not inode.is_dir:
            raise ENOTDIR(path)
        return sorted(inode.entries)

    # -- open/create/close ---------------------------------------------------------

    def open(
        self,
        path: str,
        mode: AccessMode,
        uid: int = 0,
        create: bool = False,
        truncate: bool = False,
        append: bool = False,
    ) -> int:
        """Open *path*; returns a file descriptor.

        ``create`` makes the file if missing (O_CREAT); ``truncate``
        discards existing contents (O_TRUNC); ``append`` starts the offset
        at end of file (O_APPEND).  The trace record's ``created`` flag is
        set when the call created the file *or* truncated it to zero —
        either way the data written through this descriptor is new data for
        lifetime purposes (paper Figure 4).
        """
        self._count("open")
        if truncate and not mode.writable:
            raise EINVAL("O_TRUNC requires write access")
        now = self._now()
        created = False
        new_file = False
        try:
            inode = self.resolver.resolve(path)
        except ENOENT:
            if not create:
                raise
            parent, name = self.resolver.resolve_parent(path)
            inode = self.inodes.allocate(FileType.REGULAR, uid=uid, now=now)
            parent.entries[name] = inode.inum
            parent.mtime = now
            parent.size = parent.dir_size()
            self.resolver.dnlc.enter(parent.inum, name, inode.inum)
            created = True
            new_file = True
        if inode.is_dir:
            if mode.writable:
                raise EISDIR(path)
        elif truncate and not created:
            if inode.size > 0:
                self.buffer_cache.invalidate_file(inode.file_id)
                self.content.truncate(inode.inum, 0)
                self._set_size(inode, 0)
                inode.mtime = now
            created = True  # all subsequent data is new data
        self.inode_cache.touch(inode.inum)

        offset = inode.size if append else 0
        open_id = self.tracer.next_open_id()
        fd = self.fds.next_fd()
        entry = OpenFile(
            fd=fd, inode=inode, mode=mode, open_id=open_id, uid=uid,
            offset=offset, open_time=now,
        )
        self.fds.insert(entry)
        inode.atime = now
        self.tracer.on_open(
            time=now,
            open_id=open_id,
            file_id=inode.file_id,
            user_id=uid,
            size=inode.size,
            mode=mode,
            created=created,
            new_file=new_file,
            initial_pos=offset,
        )
        return fd

    def creat(self, path: str, uid: int = 0) -> int:
        """The ``creat`` syscall: create/truncate and open write-only."""
        self._count("creat")
        return self.open(path, AccessMode.WRITE, uid=uid, create=True, truncate=True)

    def close(self, fd: int) -> None:
        """Close a descriptor; logs the final position.

        When the descriptor was duplicated, only the close of the *last*
        reference ends the open (and is traced) — matching the kernel,
        whose trace package hooked the file-table release."""
        self._count("close")
        entry, last = self.fds.remove(fd)
        if not last:
            return
        now = self._now()
        self.tracer.on_close(time=now, open_id=entry.open_id, final_pos=entry.offset)
        inode = entry.inode
        if (
            inode.inum in self._unlinked_open
            and inode.nlink == 0
            and not self.fds.opens_of_inode(inode.inum)
        ):
            self._release_inode(inode)

    # -- data transfer ----------------------------------------------------------

    def read(self, fd: int, length: int) -> bytes:
        """Read up to *length* bytes at the current offset.

        Never traced (the paper's tracer logged no reads); advances the
        offset and runs the blocks through the live buffer cache.
        """
        self._count("read")
        if length < 0:
            raise EINVAL(f"negative read length {length}")
        entry = self.fds.get(fd)
        if not entry.mode.readable:
            raise EBADF(f"fd {fd} not open for reading")
        inode = entry.inode
        if inode.is_dir:
            raise EISDIR("read on a directory")
        data = self.content.read(inode.inum, entry.offset, length, inode.size)
        actual = min(length, max(0, inode.size - entry.offset))
        if actual > 0:
            self.buffer_cache.access(inode.file_id, entry.offset, actual, write=False)
            entry.offset += actual
            entry.bytes_read += actual
            self.total_bytes_read += actual
            inode.atime = self._now()
        return data

    def write(self, fd: int, data: Union[bytes, bytearray, int]) -> int:
        """Write at the current offset; returns the byte count.

        *data* may be real bytes or a plain count (size-only simulation).
        Extends the file (and its disk allocation) when writing past EOF.
        """
        self._count("write")
        if isinstance(data, int):
            length, payload = data, None
            if length < 0:
                raise EINVAL(f"negative write length {length}")
        else:
            length, payload = len(data), bytes(data)
        entry = self.fds.get(fd)
        if not entry.mode.writable:
            raise EBADF(f"fd {fd} not open for writing")
        inode = entry.inode
        if inode.is_dir:
            raise EISDIR("write on a directory")
        if length == 0:
            return 0
        end = entry.offset + length
        if end > inode.size:
            self._set_size(inode, end)
        if payload is not None:
            self.content.write(inode.inum, entry.offset, payload)
        self.buffer_cache.access(inode.file_id, entry.offset, length, write=True)
        entry.offset = end
        entry.bytes_written += length
        self.total_bytes_written += length
        inode.mtime = self._now()
        return length

    def lseek(self, fd: int, offset: int, whence: Whence = Whence.SET) -> int:
        """Reposition within an open file; returns the new offset.

        A reposition that actually changes the offset is traced as a seek
        event recording both the previous and the new position (Table II) —
        the pair of positions is what lets the analyzer reconstruct the
        sequential runs on either side.
        """
        self._count("lseek")
        entry = self.fds.get(fd)
        if whence is Whence.SET:
            new = offset
        elif whence is Whence.CUR:
            new = entry.offset + offset
        elif whence is Whence.END:
            new = entry.inode.size + offset
        else:
            raise EINVAL(f"bad whence {whence}")
        if new < 0:
            raise EINVAL(f"seek to negative offset {new}")
        if new != entry.offset:
            self.tracer.on_seek(
                time=self._now(),
                open_id=entry.open_id,
                prev_pos=entry.offset,
                new_pos=new,
            )
            entry.offset = new
            entry.seeks += 1
        return new

    # -- namespace mutation ---------------------------------------------------------

    def unlink(self, path: str) -> None:
        """Delete a file (defers data release while it is still open)."""
        self._count("unlink")
        inode = self._lookup_file(path)
        if inode.is_dir:
            raise EISDIR(path)
        parent, name = self.resolver.resolve_parent(path)
        del parent.entries[name]
        parent.mtime = self._now()
        parent.size = parent.dir_size()
        self.resolver.dnlc.remove(parent.inum, name)
        inode.nlink -= 1
        self.tracer.on_unlink(time=self._now(), file_id=inode.file_id)
        if inode.nlink == 0:
            if self.fds.opens_of_inode(inode.inum):
                self._unlinked_open.add(inode.inum)
            else:
                self._release_inode(inode)

    def truncate(self, path: str, length: int) -> None:
        """Shorten (or sparsely extend) a file by path."""
        self._count("truncate")
        if length < 0:
            raise EINVAL(f"truncate to negative length {length}")
        inode = self._lookup_file(path)
        if inode.is_dir:
            raise EISDIR(path)
        if length < inode.size:
            first_dead = -(-length // self.geometry.block_size)
            self.buffer_cache.invalidate_file(inode.file_id, from_block=first_dead)
            self.content.truncate(inode.inum, length)
        self._set_size(inode, length)
        inode.mtime = self._now()
        self.tracer.on_truncate(
            time=self._now(), file_id=inode.file_id, new_length=length
        )

    def link(self, existing: str, new: str) -> None:
        """Create a hard link: both names refer to the same inode.

        The file's data dies only when the *last* link is unlinked (and no
        descriptors remain) — the nlink accounting the trace's unlink
        semantics rest on.
        """
        self._count("link")
        inode = self.resolver.resolve(existing)
        if inode.is_dir:
            raise EISDIR(existing)
        parent, name = self.resolver.resolve_parent(new)
        if name in parent.entries:
            raise EEXIST(new)
        now = self._now()
        parent.entries[name] = inode.inum
        parent.mtime = now
        parent.size = parent.dir_size()
        self.resolver.dnlc.enter(parent.inum, name, inode.inum)
        inode.nlink += 1

    def dup(self, fd: int) -> int:
        """Duplicate a descriptor: the copy shares the open-file entry, so
        the offset moves together — exactly 4.2 BSD's semantics, and the
        reason the tracer's open id is per-open rather than per-fd."""
        self._count("dup")
        entry = self.fds.get(fd)
        new_fd = self.fds.next_fd()
        self.fds.insert_alias(new_fd, entry)
        return new_fd

    def rename(self, old: str, new: str) -> None:
        """Rename a file or directory (same file id afterwards)."""
        self._count("rename")
        inode = self.resolver.resolve(old)
        old_parent, old_name = self.resolver.resolve_parent(old)
        new_parent, new_name = self.resolver.resolve_parent(new)
        existing_inum = new_parent.entries.get(new_name)
        if existing_inum is not None:
            existing = self.inodes.get(existing_inum)
            if existing.is_dir:
                raise EISDIR(new)
            # rename over an existing file replaces it (its data dies).
            self.unlink(new)
        now = self._now()
        del old_parent.entries[old_name]
        old_parent.mtime = now
        old_parent.size = old_parent.dir_size()
        new_parent.entries[new_name] = inode.inum
        new_parent.mtime = now
        new_parent.size = new_parent.dir_size()
        self.resolver.dnlc.remove(old_parent.inum, old_name)
        self.resolver.dnlc.enter(new_parent.inum, new_name, inode.inum)

    # -- metadata and program load ------------------------------------------------

    def stat(self, path: str) -> StatResult:
        """Return a file's metadata."""
        self._count("stat")
        inode = self._lookup_file(path)
        return StatResult(
            inum=inode.inum,
            file_id=inode.file_id,
            type=inode.type,
            size=inode.size if not inode.is_dir else inode.dir_size(),
            uid=inode.uid,
            nlink=inode.nlink,
            ctime=inode.ctime,
            mtime=inode.mtime,
            atime=inode.atime,
        )

    def exists(self, path: str) -> bool:
        return self.resolver.exists(path)

    def execve(self, path: str, uid: int = 0) -> StatResult:
        """Load a program: traced with the file size so that paging can be
        approximated offline (paper Section 6.4 / Figure 7).  Demand paging
        itself is intentionally not run through the buffer cache, matching
        the traces' exclusion of paging I/O."""
        self._count("execve")
        inode = self._lookup_file(path)
        if inode.is_dir:
            raise EISDIR(path)
        now = self._now()
        inode.atime = now
        self.tracer.on_exec(
            time=now, file_id=inode.file_id, user_id=uid, size=inode.size
        )
        return self.stat(path)

    def sync(self) -> int:
        """Flush the buffer cache (the ``sync`` syscall)."""
        self._count("sync")
        return self.buffer_cache.sync()

    # -- accounting -------------------------------------------------------------

    def logical_bytes(self) -> int:
        """Sum of regular-file sizes."""
        return sum(
            i.size for i in self.inodes.live_inodes() if not i.is_dir
        )

    def allocated_bytes(self) -> int:
        """Disk bytes consumed (internal fragmentation included)."""
        return self.allocator.allocated_bytes

    def internal_fragmentation(self) -> int:
        """Allocated-but-unused bytes across all files."""
        return self.allocated_bytes() - self.logical_bytes()
