"""Disk geometry / superblock parameters.

4.2 BSD's fast file system allocates space in *blocks* (4096 bytes in most
systems of the era) subdivided into *fragments* (here block/4) so that the
tail of a small file does not waste a whole block — the multi-block-size
scheme the paper credits with making large cache blocks affordable on disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import EINVAL

__all__ = ["Geometry", "DEFAULT_GEOMETRY"]


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class Geometry:
    """Immutable file-system geometry.

    ``block_size`` and ``frag_size`` must be powers of two with at most 8
    fragments per block, matching the FFS constraint.
    """

    block_size: int = 4096
    frag_size: int = 1024
    total_bytes: int = 512 * 1024 * 1024

    def __post_init__(self):
        if not _is_power_of_two(self.block_size):
            raise EINVAL(f"block size {self.block_size} not a power of two")
        if not _is_power_of_two(self.frag_size):
            raise EINVAL(f"fragment size {self.frag_size} not a power of two")
        if self.frag_size > self.block_size:
            raise EINVAL("fragment size exceeds block size")
        if self.block_size // self.frag_size > 8:
            raise EINVAL("more than 8 fragments per block")
        if self.total_bytes % self.block_size:
            raise EINVAL("device size not a whole number of blocks")

    @property
    def frags_per_block(self) -> int:
        return self.block_size // self.frag_size

    @property
    def total_blocks(self) -> int:
        return self.total_bytes // self.block_size

    @property
    def total_frags(self) -> int:
        return self.total_bytes // self.frag_size

    def blocks_for(self, size: int) -> int:
        """Number of full blocks a file of *size* bytes spans (ceiling)."""
        return -(-size // self.block_size)

    def frags_for(self, size: int) -> int:
        """Number of fragments needed to hold *size* bytes (ceiling)."""
        return -(-size // self.frag_size)

    def allocation_for(self, size: int) -> tuple[int, int]:
        """FFS-style allocation for a file of *size* bytes.

        Returns ``(full_blocks, tail_frags)``: every block but the last is a
        full block; the tail is rounded up to fragments.  A tail that needs
        all the block's fragments is counted as a full block.
        """
        if size < 0:
            raise EINVAL(f"negative size {size}")
        if size == 0:
            return (0, 0)
        full = size // self.block_size
        tail = size - full * self.block_size
        if tail == 0:
            return (full, 0)
        tail_frags = -(-tail // self.frag_size)
        if tail_frags == self.frags_per_block:
            return (full + 1, 0)
        return (full, tail_frags)

    def allocated_bytes(self, size: int) -> int:
        """On-disk bytes consumed by a file of *size* logical bytes."""
        full, frags = self.allocation_for(size)
        return full * self.block_size + frags * self.frag_size


#: Geometry of a typical 4.2 BSD file system of the paper's era.
DEFAULT_GEOMETRY = Geometry()
