"""Inodes, the inode table and the in-core inode cache.

An inode records a file's metadata; 4.2 BSD keeps the inodes of open and
recently used files in a main-memory cache so that most opens do not need a
disk read for the i-node (the paper's Section 3.2 lists i-node I/O among the
disk traffic its traces do not capture).  :class:`InodeCache` models that
cache with LRU replacement and hit/miss counters, so the "other accesses"
discussion of Section 8 can be quantified.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field

from .errors import EINVAL, ENOENT

__all__ = ["FileType", "Inode", "InodeTable", "InodeCache", "CacheCounters"]


class FileType(enum.Enum):
    """The inode types this simulation distinguishes."""

    REGULAR = "f"
    DIRECTORY = "d"


#: Size of one on-disk directory entry, used to account directory sizes
#: (4.2 BSD entries are variable-length; 16 bytes is a typical small entry).
DIRECTORY_ENTRY_SIZE = 16


@dataclass
class Inode:
    """One inode.

    ``file_id`` is the stable trace-level identity of the file: it survives
    rename but not unlink+recreate, matching the paper's per-file ids.
    For directories, ``entries`` maps component names to inode numbers.
    """

    inum: int
    type: FileType
    uid: int
    file_id: int
    size: int = 0
    nlink: int = 1
    ctime: float = 0.0
    mtime: float = 0.0
    atime: float = 0.0
    entries: dict[str, int] = field(default_factory=dict)

    @property
    def is_dir(self) -> bool:
        return self.type is FileType.DIRECTORY

    def dir_size(self) -> int:
        """Logical size of a directory (entries * entry size, min one)."""
        return max(1, len(self.entries)) * DIRECTORY_ENTRY_SIZE


class InodeTable:
    """Allocates inode numbers and stores all live inodes."""

    def __init__(self):
        self._inodes: dict[int, Inode] = {}
        self._next_inum = 2  # inum 1 reserved historically; 2 is the root
        self._next_file_id = 1

    def __len__(self) -> int:
        return len(self._inodes)

    def __contains__(self, inum: int) -> bool:
        return inum in self._inodes

    def allocate(self, type: FileType, uid: int, now: float) -> Inode:
        """Create a fresh inode with a new inum and file id."""
        inode = Inode(
            inum=self._next_inum,
            type=type,
            uid=uid,
            file_id=self._next_file_id,
            ctime=now,
            mtime=now,
            atime=now,
        )
        self._next_inum += 1
        self._next_file_id += 1
        self._inodes[inode.inum] = inode
        return inode

    def get(self, inum: int) -> Inode:
        try:
            return self._inodes[inum]
        except KeyError:
            raise ENOENT(f"inode {inum}") from None

    def free(self, inum: int) -> None:
        if inum not in self._inodes:
            raise EINVAL(f"freeing unknown inode {inum}")
        del self._inodes[inum]

    def live_inodes(self) -> list[Inode]:
        return list(self._inodes.values())


@dataclass
class CacheCounters:
    """Hit/miss counters shared by the small kernel caches."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class InodeCache:
    """LRU cache of in-core inodes.

    A miss models a disk read of the i-node; the counters let experiments
    estimate the non-file-data disk traffic the paper's Section 8 flags as
    increasingly important.
    """

    def __init__(self, capacity: int = 200):
        if capacity <= 0:
            raise EINVAL("inode cache capacity must be positive")
        self.capacity = capacity
        self.counters = CacheCounters()
        self._lru: OrderedDict[int, None] = OrderedDict()

    def touch(self, inum: int) -> bool:
        """Record an access to *inum*; returns True on a cache hit."""
        if inum in self._lru:
            self._lru.move_to_end(inum)
            self.counters.hits += 1
            return True
        self.counters.misses += 1
        self._lru[inum] = None
        if len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
        return False

    def invalidate(self, inum: int) -> None:
        self._lru.pop(inum, None)

    def __len__(self) -> int:
        return len(self._lru)
