"""Pathname resolution (``namei``) and the directory name lookup cache.

Opening a file in 4.2 BSD walks the pathname one component at a time; each
component costs directory I/O unless the (directory, name) pair is in the
directory name lookup cache, which Leffler et al. measured at an 85% hit
ratio (paper Section 3.2).  This module implements the walk over the
simulated inode tree plus an LRU DNLC with the same structure.
"""

from __future__ import annotations

from collections import OrderedDict

from .errors import EINVAL, ENOENT, ENOTDIR
from .inode import CacheCounters, Inode, InodeTable

__all__ = ["Dnlc", "NameResolver", "split_path", "parent_path"]


def split_path(path: str) -> list[str]:
    """Split an absolute path into components; validates the path."""
    if not path or not path.startswith("/"):
        raise EINVAL(f"path must be absolute: {path!r}")
    components = [c for c in path.split("/") if c]
    for component in components:
        if component in (".", ".."):
            raise EINVAL(f"'.' and '..' are not supported: {path!r}")
    return components


def parent_path(path: str) -> tuple[str, str]:
    """Split *path* into (parent directory path, final component)."""
    components = split_path(path)
    if not components:
        raise EINVAL("the root directory has no parent")
    return "/" + "/".join(components[:-1]), components[-1]


class Dnlc:
    """The directory name lookup cache: (dir inum, name) -> inum, LRU."""

    def __init__(self, capacity: int = 400):
        if capacity <= 0:
            raise EINVAL("DNLC capacity must be positive")
        self.capacity = capacity
        self.counters = CacheCounters()
        self._lru: OrderedDict[tuple[int, str], int] = OrderedDict()

    def lookup(self, dir_inum: int, name: str) -> int | None:
        key = (dir_inum, name)
        inum = self._lru.get(key)
        if inum is None:
            self.counters.misses += 1
            return None
        self._lru.move_to_end(key)
        self.counters.hits += 1
        return inum

    def enter(self, dir_inum: int, name: str, inum: int) -> None:
        key = (dir_inum, name)
        self._lru[key] = inum
        self._lru.move_to_end(key)
        if len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    def remove(self, dir_inum: int, name: str) -> None:
        self._lru.pop((dir_inum, name), None)

    def purge_inum(self, inum: int) -> None:
        """Drop every entry resolving to *inum* (after inode reuse)."""
        doomed = [k for k, v in self._lru.items() if v == inum]
        for key in doomed:
            del self._lru[key]

    def __len__(self) -> int:
        return len(self._lru)


class NameResolver:
    """Walks pathnames over an inode table, consulting the DNLC.

    ``directory_reads`` counts the component lookups that missed the DNLC
    and therefore would have required directory disk I/O — one of the
    "other accesses" of the paper's Section 8.
    """

    def __init__(self, inodes: InodeTable, root_inum: int, dnlc: Dnlc | None = None):
        self.inodes = inodes
        self.root_inum = root_inum
        self.dnlc = dnlc if dnlc is not None else Dnlc()
        self.directory_reads = 0

    def resolve(self, path: str) -> Inode:
        """Resolve an absolute path to its inode (raises ENOENT/ENOTDIR)."""
        inode = self.inodes.get(self.root_inum)
        for name in split_path(path):
            if not inode.is_dir:
                raise ENOTDIR(path)
            child_inum = self.dnlc.lookup(inode.inum, name)
            if child_inum is None:
                child_inum = inode.entries.get(name)
                self.directory_reads += 1
                if child_inum is None:
                    raise ENOENT(path)
                self.dnlc.enter(inode.inum, name, child_inum)
            inode = self.inodes.get(child_inum)
        return inode

    def resolve_parent(self, path: str) -> tuple[Inode, str]:
        """Resolve the parent directory of *path*; returns (inode, name)."""
        parent, name = parent_path(path)
        inode = self.resolve(parent)
        if not inode.is_dir:
            raise ENOTDIR(parent)
        return inode, name

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except (ENOENT, ENOTDIR):
            return False
