"""Tree snapshots: save and restore a file system's namespace.

The traced machines' disks were already populated when tracing began; a
reproducible study wants to pin that starting state.  A snapshot records
the directory tree with every file's path, owner and size as JSON; loading
it replays the tree through the ordinary syscall layer, so the restored
system is a legitimate file system state (allocator, caches and counters
all consistent), ready for a workload run.

Snapshots capture *shape*, not payload bytes: inode numbers, file ids and
timestamps are assigned fresh on load (they are kernel-internal), and
content restores as zeros under a :class:`NullContentStore` — which is all
a trace study needs.
"""

from __future__ import annotations

import json
from typing import Any

from ..trace.records import AccessMode
from .filesystem import FileSystem
from .inode import FileType

__all__ = ["tree_to_dict", "dict_to_tree", "save_tree", "load_tree"]

_FORMAT = "repro-fs-tree-v1"


def tree_to_dict(fs: FileSystem) -> dict[str, Any]:
    """Capture *fs*'s namespace (directories and files with sizes)."""
    directories: list[str] = []
    files: list[dict[str, Any]] = []

    def walk(inum: int, path: str) -> None:
        inode = fs.inodes.get(inum)
        for name in sorted(inode.entries):
            child_inum = inode.entries[name]
            child = fs.inodes.get(child_inum)
            child_path = f"{path.rstrip('/')}/{name}"
            if child.type is FileType.DIRECTORY:
                directories.append(child_path)
                walk(child_inum, child_path)
            else:
                files.append(
                    {"path": child_path, "size": child.size, "uid": child.uid}
                )

    walk(fs.root_inum, "/")
    return {"format": _FORMAT, "directories": directories, "files": files}


def dict_to_tree(fs: FileSystem, data: dict[str, Any]) -> int:
    """Replay a snapshot into (an empty) *fs*; returns files created."""
    if data.get("format") != _FORMAT:
        raise ValueError(
            f"not a tree snapshot (format {data.get('format')!r})"
        )
    for path in data["directories"]:
        if not fs.exists(path):
            fs.makedirs(path)
    for entry in data["files"]:
        fd = fs.open(
            entry["path"], AccessMode.WRITE, uid=int(entry.get("uid", 0)),
            create=True, truncate=True,
        )
        try:
            size = int(entry["size"])
            if size:
                fs.write(fd, size)
        finally:
            fs.close(fd)
    return len(data["files"])


def save_tree(fs: FileSystem, path: str) -> None:
    """Write *fs*'s namespace snapshot as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(tree_to_dict(fs), fh, indent=1)
        fh.write("\n")


def load_tree(fs: FileSystem, path: str) -> int:
    """Restore a snapshot file into *fs*; returns files created."""
    with open(path, "r", encoding="utf-8") as fh:
        return dict_to_tree(fs, json.load(fh))
