"""The kernel trace hook.

The paper's kernel modification (based on Lukac's trace package) logged the
Table II events from inside the system-call layer.  :class:`KernelTracer`
is our equivalent: the file system calls its ``on_*`` methods from the
corresponding syscalls, and it appends quantized records to a
:class:`~repro.trace.log.TraceLog`.  A :class:`NullTracer` is substituted
when tracing is off, so the syscall layer never branches on a flag.

Crucially, there are **no hooks for read and write** — exactly the paper's
design.  Positions captured at open, seek and close are the only record of
data movement.
"""

from __future__ import annotations

from ..trace.log import TraceLog
from ..trace.records import (
    AccessMode,
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
    UnlinkEvent,
    quantize_time,
)

__all__ = ["NullTracer", "KernelTracer"]


class NullTracer:
    """A tracer that records nothing (tracing disabled)."""

    def next_open_id(self) -> int:
        """Open ids are still handed out so the kernel's bookkeeping does
        not depend on whether tracing is enabled."""
        return 0

    def on_open(
        self,
        time: float,
        open_id: int,
        file_id: int,
        user_id: int,
        size: int,
        mode: AccessMode,
        created: bool,
        new_file: bool,
        initial_pos: int,
    ) -> None:
        pass

    def on_close(self, time: float, open_id: int, final_pos: int) -> None:
        pass

    def on_seek(self, time: float, open_id: int, prev_pos: int, new_pos: int) -> None:
        pass

    def on_create(self, time: float, file_id: int, user_id: int) -> None:
        pass

    def on_unlink(self, time: float, file_id: int) -> None:
        pass

    def on_truncate(self, time: float, file_id: int, new_length: int) -> None:
        pass

    def on_exec(self, time: float, file_id: int, user_id: int, size: int) -> None:
        pass


class KernelTracer(NullTracer):
    """Appends Table II records to a trace log.

    Times are quantized to the 10 ms tracer resolution, and made
    non-decreasing after quantization (two syscalls within one tick get the
    same timestamp, as on the real system).
    """

    def __init__(self, log: TraceLog | None = None, name: str = "trace"):
        self.log = log if log is not None else TraceLog(name=name)
        self._next_open_id = 1
        self._last_time = 0.0

    def next_open_id(self) -> int:
        open_id = self._next_open_id
        self._next_open_id += 1
        return open_id

    def _time(self, time: float) -> float:
        t = quantize_time(time)
        if t < self._last_time:
            t = self._last_time
        self._last_time = t
        return t

    def on_open(
        self,
        time: float,
        open_id: int,
        file_id: int,
        user_id: int,
        size: int,
        mode: AccessMode,
        created: bool,
        new_file: bool,
        initial_pos: int,
    ) -> None:
        self.log.append(
            OpenEvent(
                time=self._time(time),
                open_id=open_id,
                file_id=file_id,
                user_id=user_id,
                size=size,
                mode=mode,
                created=created,
                new_file=new_file,
                initial_pos=initial_pos,
            )
        )

    def on_close(self, time: float, open_id: int, final_pos: int) -> None:
        self.log.append(
            CloseEvent(time=self._time(time), open_id=open_id, final_pos=final_pos)
        )

    def on_seek(self, time: float, open_id: int, prev_pos: int, new_pos: int) -> None:
        self.log.append(
            SeekEvent(
                time=self._time(time),
                open_id=open_id,
                prev_pos=prev_pos,
                new_pos=new_pos,
            )
        )

    def on_create(self, time: float, file_id: int, user_id: int) -> None:
        self.log.append(
            CreateEvent(time=self._time(time), file_id=file_id, user_id=user_id)
        )

    def on_unlink(self, time: float, file_id: int) -> None:
        self.log.append(UnlinkEvent(time=self._time(time), file_id=file_id))

    def on_truncate(self, time: float, file_id: int, new_length: int) -> None:
        self.log.append(
            TruncateEvent(
                time=self._time(time), file_id=file_id, new_length=new_length
            )
        )

    def on_exec(self, time: float, file_id: int, user_id: int, size: int) -> None:
        self.log.append(
            ExecEvent(
                time=self._time(time), file_id=file_id, user_id=user_id, size=size
            )
        )
