"""Synthetic workload engine.

Substitutes for the paper's three instrumented production VAXes: a
discrete-event simulation of user sessions running application models
(compiles, editing, mail, shells, CAD tools, print spooling, the 4.2 BSD
network status daemons) against the simulated file system, with per-machine
profiles calibrated to reproduce the distributions the paper measured.
"""

from .apps import ACTIVITIES, AppContext
from .distributions import (
    BurstyThinkTime,
    Mixture,
    WeightedChoice,
    bounded_exponential,
    bounded_lognormal,
    zipf_weights,
)
from .engine import Engine, Process
from .generator import GenerationResult, generate, generate_trace
from .namespace import Namespace, NamespaceConfig, build_namespace
from .profile_io import load_profile, profile_from_dict, profile_to_dict, save_profile
from .profiles import PROFILES, UCBARPA, UCBCAD, UCBERNIE, MachineProfile
from .users import user_session

__all__ = [
    "generate",
    "generate_trace",
    "GenerationResult",
    "MachineProfile",
    "UCBARPA",
    "UCBERNIE",
    "UCBCAD",
    "PROFILES",
    "profile_from_dict",
    "profile_to_dict",
    "load_profile",
    "save_profile",
    "Engine",
    "Process",
    "Namespace",
    "NamespaceConfig",
    "build_namespace",
    "AppContext",
    "ACTIVITIES",
    "user_session",
    "BurstyThinkTime",
    "WeightedChoice",
    "Mixture",
    "bounded_lognormal",
    "bounded_exponential",
    "zipf_weights",
]
