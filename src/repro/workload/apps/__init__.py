"""Application behaviour models.

Each activity is a generator factory ``f(ctx) -> Process`` performing one
user-visible action.  :data:`ACTIVITIES` is the registry the machine
profiles select from by name.
"""

from .admin import check_log, lookup_table, record_login, update_table
from .base import AppContext
from .cad import design_rule_check, layout_edit, simulate_circuit
from .compiler import compile_file, run_tests
from .editor import edit_session, quick_edit
from .formatter import format_document
from .mail import read_mail, send_mail
from .shell import login, run_command
from .spooler import print_file
from .statusdaemon import status_daemon

#: Name -> activity factory, for profile mixes.
ACTIVITIES = {
    "compile": compile_file,
    "run_tests": run_tests,
    "edit": edit_session,
    "quick_edit": quick_edit,
    "shell": run_command,
    "send_mail": send_mail,
    "read_mail": read_mail,
    "lookup_table": lookup_table,
    "update_table": update_table,
    "check_log": check_log,
    "print": print_file,
    "format": format_document,
    "cad_simulate": simulate_circuit,
    "cad_layout": layout_edit,
    "cad_drc": design_rule_check,
}

__all__ = [
    "ACTIVITIES",
    "AppContext",
    "compile_file",
    "run_tests",
    "edit_session",
    "quick_edit",
    "run_command",
    "login",
    "send_mail",
    "read_mail",
    "record_login",
    "lookup_table",
    "update_table",
    "check_log",
    "print_file",
    "format_document",
    "simulate_circuit",
    "layout_edit",
    "design_rule_check",
    "status_daemon",
]
