"""Administrative-file activities.

Figure 2 shows that "a few very large administrative files account for
almost 20% of all file accesses.  These files are each around 1 Mbyte in
size and are used for network tables, a log of all logins, and other
information.  They are typically accessed by positioning within the file
and then reading or writing a small amount of data."  These activities
produce exactly that traffic: appends to the login log, positioned reads
of the network tables, and occasional read-modify-write updates (the
non-sequential read-write mode of Table V).
"""

from __future__ import annotations

from .base import AppContext, append_file, read_at, update_in_place

__all__ = ["record_login", "lookup_table", "update_table", "check_log"]


def record_login(ctx: AppContext):
    """Append one accounting record to the login log (wtmp-style)."""
    log = ctx.ns.admin_files[0]
    yield from append_file(ctx, log, ctx.rng.randint(512, 4096))


def check_log(ctx: AppContext):
    """Read the recent tail of the login log (``last``-style).

    One reposition near the end followed by a substantial sequential read:
    a seek-then-sequential access that moves real bytes, part of why only
    about half of all *bytes* travel in whole-file transfers (Table V)
    even though most *accesses* are whole-file.
    """
    rng = ctx.rng
    log = rng.choice(ctx.ns.admin_files)
    size = ctx.size_of(log)
    want = rng.randint(16 * 1024, 96 * 1024)
    offset = max(0, size - want)
    yield from read_at(ctx, log, offset, min(want, size))


def lookup_table(ctx: AppContext):
    """Position into the network tables and read an entry or three.

    Each lookup is its own short open — "typically accessed by positioning
    within the file and then reading ... a small amount of data" — so this
    activity contributes several of the seek-then-sequential accesses that
    make up roughly a quarter of all read-only opens in Table V.
    """
    rng = ctx.rng
    for _ in range(rng.randint(1, 3)):
        table = rng.choice(ctx.ns.admin_files)
        offset = ctx.ns.pick_admin_offset(rng, table)
        yield from read_at(ctx, table, offset, rng.randint(256, 2048))
        yield ctx.delay()


def update_table(ctx: AppContext):
    """Read-modify-write several entries in place (open read-write).

    Chunky touches (4–16 KB) so the non-sequential mode carries a real
    share of the bytes, as in the paper's Table V byte totals.
    """
    rng = ctx.rng
    table = rng.choice(ctx.ns.admin_files)
    if rng.random() < 0.35:
        # A rebuild pass scans the table sequentially through the same
        # read-write descriptor — the minority of read-write opens that
        # Table V counts as sequential (19–35% in the paper).
        from ...trace.records import AccessMode

        fd = ctx.fs.open(table, AccessMode.READ_WRITE, uid=ctx.uid)
        try:
            size = ctx.fs.fds.get(fd).inode.size
            remaining = min(size, rng.randint(64, 256) * 1024)
            while remaining > 0:
                ctx.fs.read(fd, min(4096, remaining))
                remaining -= 4096
                yield ctx.delay()
        finally:
            ctx.fs.close(fd)
        return
    yield from update_in_place(
        ctx, table, touches=rng.randint(2, 6), nbytes=rng.randint(4096, 16384)
    )
