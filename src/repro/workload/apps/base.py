"""Shared plumbing for the application models.

An *activity* is a generator (see :mod:`repro.workload.engine`) performing
one user-visible action — a compile, an editor save, a mail check — as a
scripted sequence of file-system calls with small service delays between
them.  The helpers here encode the access shapes the paper measures:

* whole-file read / whole-file write (the dominant patterns, Table V);
* append: open, one reposition to the end, sequential write — the
  "single reposition then transfer" mode the paper attributes to mailbox
  appends;
* partial read at an offset (the ~1 MB administrative files of Figure 2
  are "typically accessed by positioning within the file and then reading
  or writing a small amount of data");
* random-access read-write traffic (the minority mode that makes
  read-write opens mostly non-sequential in Table V).

Positions are what matter — the tracer records no reads or writes, so a
run's length is exactly the distance between repositions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...clock import Clock
from ...trace.records import AccessMode
from ...unixfs.filesystem import FileSystem, Whence
from ..namespace import Namespace

__all__ = [
    "AppContext",
    "read_whole",
    "read_whole_slow",
    "write_whole",
    "append_file",
    "read_at",
    "read_prefix",
    "read_scattered",
    "update_in_place",
]

#: User-level I/O granule (a stdio BUFSIZ of the period).
CHUNK = 4096


@dataclass
class AppContext:
    """Everything an application model needs to run."""

    fs: FileSystem
    ns: Namespace
    rng: random.Random
    uid: int
    clock: Clock
    io_delay_mean: float = 0.004  # seconds of "CPU + disk" per chunk
    serial: int = field(default=0)
    _focus: str | None = field(default=None)

    def next_serial(self) -> int:
        """A per-context unique number for temp-file names."""
        self.serial += 1
        return self.serial

    #: Probability that a given I/O step loses the CPU to other processes
    #: for a noticeable stretch (the traced VAXes ran at load average 5–10,
    #: so time-slicing stretched many opens past half a second — the
    #: 0.5–10 s body of Figure 3).
    preempt_prob: float = 0.10
    preempt_max: float = 2.5

    def delay(self) -> float:
        """One service-time sample (never zero: syscalls take time)."""
        d = max(0.001, self.rng.expovariate(1.0 / self.io_delay_mean))
        if self.rng.random() < self.preempt_prob:
            d += self.rng.uniform(0.2, self.preempt_max)
        return d

    def size_of(self, path: str) -> int:
        return self.fs.stat(path).size

    def pick_source(self) -> str:
        """The user's working file: development happens in tight
        edit-compile-test loops on one file at a time, so most compiles and
        edits hit the *current* file.  This is what gives recompiled
        objects and re-saved sources their minutes-scale data lifetimes in
        Figure 4 (and the cache its write locality)."""
        sources = self.ns.sources[self.uid]
        if self._focus is None or self.rng.random() < 0.10:
            self._focus = self.rng.choice(sources)
        if self.rng.random() < 0.70:
            return self._focus
        return self.rng.choice(sources)


def read_whole(ctx: AppContext, path: str):
    """Read *path* sequentially from start to end (a whole-file transfer)."""
    fd = ctx.fs.open(path, AccessMode.READ, uid=ctx.uid)
    try:
        size = ctx.fs.fds.get(fd).inode.size
        remaining = size
        while remaining > 0:
            got = min(CHUNK, remaining)
            ctx.fs.read(fd, got)
            remaining -= got
            yield ctx.delay()
    finally:
        ctx.fs.close(fd)


def read_whole_slow(
    ctx: AppContext, path: str, pause_low: float, pause_high: float
):
    """Whole-file read with per-chunk processing pauses.

    Models programs that digest as they read (a mail reader showing
    messages, a troff pass): the open lasts seconds rather than
    milliseconds, populating the 0.5 s – 10 s band of Figure 3 while
    keeping the inter-event gaps well under the paper's 30-second 99th
    percentile.
    """
    fd = ctx.fs.open(path, AccessMode.READ, uid=ctx.uid)
    try:
        size = ctx.fs.fds.get(fd).inode.size
        remaining = size
        while remaining > 0:
            got = min(CHUNK, remaining)
            ctx.fs.read(fd, got)
            remaining -= got
            yield ctx.rng.uniform(pause_low, pause_high)
    finally:
        ctx.fs.close(fd)


def read_scattered(ctx: AppContext, path: str, picks: int, nbytes: int = CHUNK):
    """Archive-style access: hop to several places, reading a little at
    each (``ld`` pulling members out of a library).  Non-sequential
    read-only — the minority mode of Table V, but a real share of the
    bytes because the files are large."""
    fd = ctx.fs.open(path, AccessMode.READ, uid=ctx.uid)
    try:
        size = ctx.fs.fds.get(fd).inode.size
        if size > 0:
            for _ in range(picks):
                offset = ctx.rng.randrange(size)
                ctx.fs.lseek(fd, offset)
                ctx.fs.read(fd, min(nbytes, size - offset))
                yield ctx.delay()
    finally:
        ctx.fs.close(fd)


def read_prefix(ctx: AppContext, path: str, nbytes: int):
    """Read the first *nbytes* (rounded up to the I/O granule) then close.

    This is the ``grep``-stops-early / ``head`` pattern: a sequential but
    not whole-file read whose final position sits on a CHUNK boundary —
    the source of the jumps in Figure 1(a).
    """
    fd = ctx.fs.open(path, AccessMode.READ, uid=ctx.uid)
    try:
        size = ctx.fs.fds.get(fd).inode.size
        want = min(size, -(-nbytes // CHUNK) * CHUNK)
        remaining = want
        while remaining > 0:
            got = min(CHUNK, remaining)
            ctx.fs.read(fd, got)
            remaining -= got
            yield ctx.delay()
    finally:
        ctx.fs.close(fd)


def write_whole(ctx: AppContext, path: str, size: int, create: bool = True):
    """Create/truncate *path* and write *size* bytes sequentially."""
    fd = ctx.fs.open(
        path, AccessMode.WRITE, uid=ctx.uid, create=create, truncate=True
    )
    try:
        remaining = size
        while remaining > 0:
            put = min(CHUNK, remaining)
            ctx.fs.write(fd, put)
            remaining -= put
            yield ctx.delay()
    finally:
        ctx.fs.close(fd)


def append_file(ctx: AppContext, path: str, nbytes: int):
    """Open, reposition once to the end, write *nbytes*, close.

    Counted by the paper as a *sequential* (but not whole-file) write — a
    single reposition before any data moves.
    """
    fd = ctx.fs.open(path, AccessMode.WRITE, uid=ctx.uid, create=True)
    try:
        ctx.fs.lseek(fd, 0, Whence.END)
        remaining = nbytes
        while remaining > 0:
            put = min(CHUNK, remaining)
            ctx.fs.write(fd, put)
            remaining -= put
            yield ctx.delay()
    finally:
        ctx.fs.close(fd)


def read_at(ctx: AppContext, path: str, offset: int, nbytes: int):
    """Open, reposition once, read a little, close (admin-file pattern)."""
    fd = ctx.fs.open(path, AccessMode.READ, uid=ctx.uid)
    try:
        size = ctx.fs.fds.get(fd).inode.size
        offset = min(offset, size)
        if offset:
            ctx.fs.lseek(fd, offset)
        ctx.fs.read(fd, nbytes)
        yield ctx.delay()
    finally:
        ctx.fs.close(fd)


def update_in_place(ctx: AppContext, path: str, touches: int, nbytes: int = 512):
    """Open read-write and hop around: seek, read, seek back, write.

    The non-sequential minority mode; read-write opens in Table V are
    sequential only 19–35% of the time, and this is why.
    """
    fd = ctx.fs.open(path, AccessMode.READ_WRITE, uid=ctx.uid)
    try:
        size = max(1, ctx.fs.fds.get(fd).inode.size)
        hotspots = ctx.ns.admin_hotspots.get(path)
        for _ in range(touches):
            if hotspots:
                offset = min(size - 1, ctx.ns.pick_admin_offset(ctx.rng, path))
            else:
                offset = ctx.rng.randrange(size)
            ctx.fs.lseek(fd, offset)
            ctx.fs.read(fd, min(nbytes, size - offset))
            yield ctx.delay()
            ctx.fs.lseek(fd, offset)
            ctx.fs.write(fd, min(nbytes, size - offset))
            yield ctx.delay()
    finally:
        ctx.fs.close(fd)
