"""Computer-aided-design activities (the Ucbcad / C4 workload).

Ucbcad ran "circuit simulators, layout editors, design-rule checkers, and
circuit extractors"; the paper's example of short lifetimes there is that
"a circuit simulator generates output listings that are examined and then
deleted before the next simulation run."  Files are bigger than in
program development (decks tens to hundreds of kilobytes) but the access
shapes are the same — whole-file, sequential — which is why Section 7
finds C4 barely distinguishable from A5/E3.
"""

from __future__ import annotations

from .base import AppContext, read_whole, read_whole_slow, write_whole

__all__ = ["simulate_circuit", "layout_edit", "design_rule_check"]


def simulate_circuit(ctx: AppContext):
    """Run the simulator: read the deck, compute, emit a listing; the
    listing is examined and deleted before the activity ends."""
    rng = ctx.rng
    deck = rng.choice(ctx.ns.decks[ctx.uid])
    ctx.fs.execve("/usr/bin/cmd030", uid=ctx.uid)  # spice
    yield ctx.delay()
    # The simulator parses the deck as it reads it, so the deck stays open
    # for a while (Figure 3's 10-seconds-and-up tail) — but each gap stays
    # well under the paper's 30-second 99th-percentile inter-event bound.
    yield from read_whole_slow(ctx, deck, 0.5, 12.0)
    # Crunch numbers for a while (deck closed).
    yield rng.uniform(10.0, 180.0)
    listing = ctx.ns.tmp_path(ctx.uid, "sim", ctx.next_serial())
    listing_size = max(4096, int(ctx.size_of(deck) * rng.uniform(0.5, 3.0)))
    yield from write_whole(ctx, listing, listing_size)
    # Examine the listing, then clear it out before the next run.
    yield rng.uniform(5.0, 120.0)
    yield from read_whole(ctx, listing)
    ctx.fs.unlink(listing)
    yield ctx.delay()


def layout_edit(ctx: AppContext):
    """Layout editor: load a cell, edit, write it back whole."""
    rng = ctx.rng
    deck = rng.choice(ctx.ns.decks[ctx.uid])
    ctx.fs.execve("/usr/bin/cmd031", uid=ctx.uid)  # caesar/magic
    yield ctx.delay()
    yield from read_whole(ctx, deck)
    yield rng.uniform(20.0, 300.0)
    new_size = max(4096, int(ctx.size_of(deck) * rng.uniform(0.9, 1.2)))
    yield from write_whole(ctx, deck, new_size)


def design_rule_check(ctx: AppContext):
    """DRC: read the cell, write a small violations report, read+delete it."""
    rng = ctx.rng
    deck = rng.choice(ctx.ns.decks[ctx.uid])
    ctx.fs.execve("/usr/bin/cmd032", uid=ctx.uid)  # drc
    yield ctx.delay()
    yield from read_whole(ctx, deck)
    yield rng.uniform(5.0, 60.0)
    report = ctx.ns.tmp_path(ctx.uid, "drc", ctx.next_serial())
    yield from write_whole(ctx, report, rng.randint(256, 16 * 1024))
    yield rng.uniform(1.0, 30.0)
    yield from read_whole(ctx, report)
    ctx.fs.unlink(report)
    yield ctx.delay()
