"""Program-development activities: the compile/assemble/link pipeline.

The paper singles out program development as the dominant workload on
Ucbarpa and Ucbernie, and explains the short file lifetimes of Figure 4
with exactly this pipeline: "the compiler generates an assembler file
which is deleted as soon as it has been translated to machine code."

One :func:`compile_file` activity:

* ``exec`` of the compiler driver and passes (execve trace events, which
  also feed the Figure 7 paging approximation);
* whole-file reads of the source and a popularity-weighted set of shared
  headers (the re-read locality that makes the caches of Section 6 work);
* a temporary ``.s`` file written, read back by the assembler and deleted
  within seconds (the left edge of Figure 4);
* a ``.o`` file that is overwritten by the next compile of the same
  source (data lifetime = inter-compile time);
* occasionally a link step reading several objects and libraries and
  rewriting ``a.out``, which is then executed.
"""

from __future__ import annotations

from .base import AppContext, read_scattered, read_whole, write_whole

__all__ = ["compile_file", "run_tests"]


def _object_path(source: str) -> str:
    return source.rsplit(".", 1)[0] + ".o"


def compile_file(ctx: AppContext):
    """One compile of a randomly chosen source file (maybe with a link)."""
    rng = ctx.rng
    source = ctx.pick_source()
    source_size = ctx.size_of(source)

    ctx.fs.execve("/bin/cmd000", uid=ctx.uid)  # the cc driver
    yield ctx.delay()
    yield from read_whole(ctx, source)
    for header in ctx.ns.pick_headers(rng, rng.randint(2, 8)):
        yield from read_whole(ctx, header)
        # Parse what was just included before pulling in the next header.
        yield rng.uniform(0.1, 1.5)

    # Compiler pass writes the assembler temp, ~2x the source size.
    asm_tmp = ctx.ns.tmp_path(ctx.uid, "ctm", ctx.next_serial())
    asm_size = max(256, int(source_size * rng.uniform(1.5, 2.5)))
    yield from write_whole(ctx, asm_tmp, asm_size)

    # Assembler: exec, read the temp back, emit the object, delete the temp.
    ctx.fs.execve("/bin/cmd001", uid=ctx.uid)  # as
    yield ctx.delay()
    yield from read_whole(ctx, asm_tmp)
    obj = _object_path(source)
    obj_size = max(128, int(source_size * rng.uniform(0.6, 1.2)))
    yield from write_whole(ctx, obj, obj_size)
    ctx.fs.unlink(asm_tmp)
    yield ctx.delay()

    if rng.random() < 0.35:
        yield from _link(ctx, obj)


def _link(ctx: AppContext, fresh_object: str):
    """Link step: read objects + a library, rewrite a.out, run it."""
    rng = ctx.rng
    ctx.fs.execve("/bin/cmd002", uid=ctx.uid)  # ld
    yield ctx.delay()
    objects = [
        _object_path(s)
        for s in rng.sample(
            ctx.ns.sources[ctx.uid], k=min(3, len(ctx.ns.sources[ctx.uid]))
        )
    ]
    if fresh_object not in objects:
        objects.append(fresh_object)
    total = 0
    for obj in objects:
        if ctx.fs.exists(obj):
            total += ctx.size_of(obj)
            yield from read_whole(ctx, obj)
    # The loader pulls individual members out of the archive: a scattered,
    # non-sequential read of a large file.
    library = rng.choice(ctx.ns.libraries)
    yield from read_scattered(ctx, library, picks=rng.randint(5, 12), nbytes=rng.randint(8192, 16384))
    total += ctx.size_of(library) // 4  # only some library members land

    binary = f"{ctx.ns.home_dirs[ctx.uid]}/a.out"
    yield from write_whole(ctx, binary, max(2048, total))
    # Run the fresh program once (an execve for the paging simulation).
    ctx.fs.execve(binary, uid=ctx.uid)
    yield ctx.delay()


def run_tests(ctx: AppContext):
    """Re-run the user's program: exec a.out, write+inspect+delete output.

    A second source of minutes-scale lifetimes: the test's output listing
    is examined and deleted before the next run.
    """
    rng = ctx.rng
    binary = f"{ctx.ns.home_dirs[ctx.uid]}/a.out"
    if not ctx.fs.exists(binary):
        # Nothing built yet: fall back to a compile.
        yield from compile_file(ctx)
        return
    ctx.fs.execve(binary, uid=ctx.uid)
    yield ctx.delay()
    out = ctx.ns.tmp_path(ctx.uid, "out", ctx.next_serial())
    yield from write_whole(ctx, out, rng.randint(512, 20 * 1024))
    # Look at the output for a little while, then throw it away.
    yield ctx.rng.uniform(2.0, 45.0)
    yield from read_whole(ctx, out)
    ctx.fs.unlink(out)
    yield ctx.delay()
