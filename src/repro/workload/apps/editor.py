"""Text-editor activities.

An edit session reads the file whole, keeps a ``vi``-style temporary open
for the whole session (the long-open-time tail of Figure 3: "there are a
few files that stay open for long periods of time, such as temporary
files used by the text editor"), and finally saves by rewriting the
original in place — which kills the file's previous data, one of the
overwrite paths feeding Figure 4.

The scratch file is accessed the way ``ex``/``vi`` really used its temp:
random block-aligned rewrites through a read-write descriptor.  These
sessions are the main source of the non-sequential read-write accesses of
Table V (read-write opens are sequential only 19–35% of the time in the
paper) and contribute a steady trickle of seek events.
"""

from __future__ import annotations

from ...trace.records import AccessMode
from .base import AppContext, CHUNK, read_prefix, read_whole, write_whole

__all__ = ["edit_session", "quick_edit"]

#: ex/vi temp-file block size.
_SCRATCH_BLOCK = 1024


def edit_session(ctx: AppContext):
    """A full editor session on one of the user's files."""
    rng = ctx.rng
    target = ctx.pick_source() if rng.random() < 0.7 else rng.choice(
        ctx.ns.docs[ctx.uid]
    )
    size = ctx.size_of(target)

    ctx.fs.execve("/bin/cmd003", uid=ctx.uid)  # vi
    yield ctx.delay()
    # Screen setup: scan termcap for the terminal's entry.
    yield from read_prefix(
        ctx, ctx.ns.etc_files["termcap"], rng.randint(2048, 24 * 1024)
    )
    yield from read_whole(ctx, target)

    # The editor's scratch file holds the edit buffer for the whole
    # session; blocks are rewritten in place as the user changes lines.
    scratch = ctx.ns.tmp_path(ctx.uid, "Ex", ctx.next_serial())
    scratch_fd = ctx.fs.open(
        scratch, AccessMode.READ_WRITE, uid=ctx.uid, create=True
    )
    try:
        # Initial buffer load into the temp.
        remaining = max(_SCRATCH_BLOCK, size)
        while remaining > 0:
            ctx.fs.write(scratch_fd, min(CHUNK, remaining))
            remaining -= CHUNK
            yield ctx.delay()
        buffer_size = max(_SCRATCH_BLOCK, size)

        for _ in range(rng.randint(3, 10)):
            # The user edits for a while (capped under ~25 s so inter-event
            # gaps respect the paper's 99%-under-30-seconds observation),
            # then the editor rewrites the touched buffer block in place.
            yield rng.uniform(2.0, 22.0)
            block = rng.randrange(max(1, buffer_size // _SCRATCH_BLOCK))
            offset = block * _SCRATCH_BLOCK
            ctx.fs.lseek(scratch_fd, offset)
            ctx.fs.read(scratch_fd, _SCRATCH_BLOCK)
            ctx.fs.lseek(scratch_fd, offset)
            ctx.fs.write(scratch_fd, _SCRATCH_BLOCK)

        # Save: rewrite the original (its old bytes die now).
        size = max(256, int(size * rng.uniform(0.8, 1.3)))
        yield from write_whole(ctx, target, size)
    finally:
        ctx.fs.close(scratch_fd)
        if ctx.fs.exists(scratch):
            ctx.fs.unlink(scratch)


def quick_edit(ctx: AppContext):
    """A few-second touch-up: read, brief pause, rewrite."""
    rng = ctx.rng
    target = ctx.pick_source() if rng.random() < 0.7 else rng.choice(
        ctx.ns.docs[ctx.uid]
    )
    ctx.fs.execve("/bin/cmd003", uid=ctx.uid)
    yield ctx.delay()
    yield from read_prefix(
        ctx, ctx.ns.etc_files["termcap"], rng.randint(2048, 24 * 1024)
    )
    yield from read_whole(ctx, target)
    yield rng.uniform(2.0, 20.0)
    new_size = max(256, int(ctx.size_of(target) * rng.uniform(0.9, 1.15)))
    yield from write_whole(ctx, target, new_size)
