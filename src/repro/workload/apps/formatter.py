"""Document formatting (nroff/troff).

The paper describes Ucbarpa and Ucbernie as used for "program development
and document formatting", with Ucbernie carrying "a substantial amount of
secretarial and administrative work".  A formatting run has a distinctive
I/O shape that fills several gaps the other activities leave:

* it re-reads the shared **macro packages** (tmac.s and friends) on every
  run — more hot small files, the read locality behind Section 6's cache
  results and the small-cache thrashing that turns Figure 6's 32 KB curve
  upward;
* it digests the document as it reads, holding it open for many seconds
  (Figure 3's 10-seconds-plus tail);
* its output is a classic short-lived temporary: viewed or spooled, then
  deleted (Figure 4's left edge).
"""

from __future__ import annotations

from .base import AppContext, read_whole, read_whole_slow, write_whole

__all__ = ["format_document"]


def format_document(ctx: AppContext):
    """One nroff run: macros + slow document read + transient output."""
    rng = ctx.rng
    document = rng.choice(ctx.ns.docs[ctx.uid])
    ctx.fs.execve("/usr/bin/cmd033", uid=ctx.uid)  # nroff
    yield ctx.delay()

    # The macro packages load first, whole, every time.
    for macro in ctx.ns.macros:
        yield from read_whole(ctx, macro)
        yield ctx.delay()

    # Formatting is compute-bound: the document stays open while each
    # chunk is processed (gaps well under the 30 s inter-event bound).
    yield from read_whole_slow(ctx, document, 1.0, 10.0)

    output = ctx.ns.tmp_path(ctx.uid, "nrf", ctx.next_serial())
    out_size = max(1024, int(ctx.size_of(document) * rng.uniform(0.9, 1.4)))
    yield from write_whole(ctx, output, out_size)

    # Proofread on the screen, then discard (or it went to the spooler,
    # which deletes it the same way).
    yield rng.uniform(5.0, 60.0)
    yield from read_whole_slow(ctx, output, 0.5, 6.0)
    ctx.fs.unlink(output)
    yield ctx.delay()
