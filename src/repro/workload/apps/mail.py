"""Mail activities.

Mail is the paper's canonical append workload: "This mode of operation is
used, for example, to append new messages onto existing mailbox files" —
a single reposition to the end followed by a sequential write, which
Table V counts as sequential but not whole-file.  Reading mail is mostly
whole-file; emptying the mailbox is one of the few ``truncate`` calls in
the traces (0.1–0.2% of events in Table III).
"""

from __future__ import annotations

from ...unixfs.filesystem import Whence
from ...trace.records import AccessMode
from .base import AppContext, append_file, read_whole, read_whole_slow

__all__ = ["send_mail", "read_mail"]


def send_mail(ctx: AppContext):
    """Deliver a message: append it to someone's mailbox."""
    rng = ctx.rng
    recipient = rng.choice(sorted(ctx.ns.mailboxes))
    message = rng.randint(600, 8000)
    ctx.fs.execve("/bin/cmd005", uid=ctx.uid)  # /bin/mail
    yield ctx.delay()
    # Alias expansion consults the password map.
    yield from read_whole(ctx, ctx.ns.etc_files["passwd"])
    yield from append_file(ctx, ctx.ns.mailboxes[recipient], message)


def read_mail(ctx: AppContext):
    """Read one's mailbox; sometimes just the new tail; sometimes empty it."""
    rng = ctx.rng
    mailbox = ctx.ns.mailboxes[ctx.uid]
    ctx.fs.execve("/bin/cmd005", uid=ctx.uid)
    yield ctx.delay()
    size = ctx.size_of(mailbox)
    if size == 0:
        # "No mail": the reader opens, sees EOF, closes.
        fd = ctx.fs.open(mailbox, AccessMode.READ, uid=ctx.uid)
        ctx.fs.close(fd)
        yield ctx.delay()
        return
    if rng.random() < 0.45:
        # /bin/mail opens the box read-write: it reads it through and
        # rewrites status flags in place before closing.  The read pass is
        # one long run — the *sequential* read-write mode of Table V.
        fd = ctx.fs.open(mailbox, AccessMode.READ_WRITE, uid=ctx.uid)
        try:
            remaining = size
            while remaining > 0:
                ctx.fs.read(fd, min(4096, remaining))
                remaining -= 4096
                yield rng.uniform(0.5, 5.0)
        finally:
            ctx.fs.close(fd)
    elif size > 16 * 1024 and rng.random() < 0.5:
        # Jump to the recent messages only.
        fd = ctx.fs.open(mailbox, AccessMode.READ, uid=ctx.uid)
        try:
            ctx.fs.lseek(fd, -(8 * 1024), Whence.END)
            ctx.fs.read(fd, 8 * 1024)
            yield rng.uniform(1.0, 8.0)  # reading the new messages
        finally:
            ctx.fs.close(fd)
    else:
        # The reader displays message by message: the mailbox stays open
        # for seconds (the 0.5–10 s band of Figure 3).
        yield from read_whole_slow(ctx, mailbox, 1.0, 9.0)
    if rng.random() < 0.15:
        # Saved everything: empty the mailbox.
        ctx.fs.truncate(mailbox, 0)
        yield ctx.delay()
