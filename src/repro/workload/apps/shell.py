"""Shell activities: command execution and the small-file churn around it.

The traces are full of short opens of short files — command scripts,
dotfiles, memos (Section 5.2: "Short files are used extensively in UNIX
for directories, command files, memos, ...").  A shell activity executes
a popularity-weighted command binary and performs the command's typical
file behaviour: ``cat`` reads a file whole, ``grep`` reads a prefix and
stops, ``cp`` copies, ``wc`` scans everything it is given.
"""

from __future__ import annotations

from .base import AppContext, read_prefix, read_whole, read_whole_slow, write_whole

__all__ = ["login", "run_command"]


def login(ctx: AppContext):
    """Session start: read the dotfiles, record the login.

    The login record is an append to the ~1 MB accounting file — a
    large-administrative-file access of the Figure 2 kind.
    """
    ctx.fs.execve("/bin/cmd004", uid=ctx.uid)  # login
    yield ctx.delay()
    yield from read_whole(ctx, ctx.ns.etc_files["passwd"])
    yield from read_whole(ctx, ctx.ns.etc_files["motd"])
    for dotfile in (".cshrc", ".login"):
        path = f"{ctx.ns.home_dirs[ctx.uid]}/{dotfile}"
        if not ctx.fs.exists(path):
            yield from write_whole(ctx, path, ctx.rng.randint(200, 1500))
        yield from read_whole(ctx, path)
    from .admin import record_login  # local import avoids a cycle

    yield from record_login(ctx)


def run_command(ctx: AppContext):
    """A burst of shell commands (users type several in a row)."""
    rng = ctx.rng
    for _ in range(rng.randint(1, 4)):
        yield from _one_command(ctx)
        yield rng.uniform(0.5, 4.0)


def _one_command(ctx: AppContext):
    """Execute one shell command with its characteristic file traffic."""
    rng = ctx.rng
    command = ctx.ns.pick_command(rng)
    ctx.fs.execve(command, uid=ctx.uid)
    yield ctx.delay()

    if rng.random() < 0.65:
        # Almost everything maps uids to names: ls -l, ps, who, mail...
        yield from read_whole(ctx, ctx.ns.etc_files["passwd"])
        if rng.random() < 0.3:
            yield from read_whole(ctx, ctx.ns.etc_files["group"])

    roll = rng.random()

    def pick_file() -> str:
        # Users mostly poke at what they are working on right now.
        if rng.random() < 0.6:
            return ctx.pick_source()
        return rng.choice(ctx.ns.docs[ctx.uid] + ctx.ns.sources[ctx.uid])
    if roll < 0.30:
        # cat is quick; more pages to the terminal, holding the file open
        # while the user reads (a chunk of Figure 3's 0.5 s – 60 s band).
        target = pick_file()
        if rng.random() < 0.40:
            yield from read_whole_slow(ctx, target, 1.5, 12.0)
        else:
            yield from read_whole(ctx, target)
    elif roll < 0.50:
        # grep / head: sequential prefix, stop early on a granule boundary.
        target = pick_file()
        size = ctx.size_of(target)
        if size > 0:
            yield from read_prefix(ctx, target, rng.randint(1, max(1, size)))
    elif roll < 0.62:
        # cp: read whole, write the copy into the user's scratch slot
        # (rewritten every time, so the previous copy's data dies).
        source = pick_file()
        scratch = f"{ctx.ns.home_dirs[ctx.uid]}/scratch"
        yield from read_whole(ctx, source)
        yield from write_whole(ctx, scratch, ctx.size_of(source))
    elif roll < 0.72:
        # A pipeline stage: read input, write a short-lived temp, read it
        # back downstream, delete it (sort | uniq style).
        source = pick_file()
        tmp = ctx.ns.tmp_path(ctx.uid, "sh", ctx.next_serial())
        yield from read_whole(ctx, source)
        yield from write_whole(ctx, tmp, max(128, ctx.size_of(source) // 2))
        ctx.fs.execve(ctx.ns.pick_command(rng), uid=ctx.uid)
        yield ctx.delay()
        yield from read_whole(ctx, tmp)
        ctx.fs.unlink(tmp)
        yield ctx.delay()
    elif roll < 0.76:
        # which / file / test -f: pure metadata, no data transfer.
        ctx.fs.stat(rng.choice(ctx.ns.commands))
        yield ctx.delay()
    elif roll < 0.84:
        # nm / ar t: poke around inside an archive or binary (a
        # non-sequential read of a large file).
        from .base import read_scattered

        yield from read_scattered(
            ctx, rng.choice(ctx.ns.libraries), picks=rng.randint(2, 5),
            nbytes=2048,
        )
    elif roll < 0.94:
        # rwho / ruptime: read a bunch of the little host status files the
        # network daemons keep fresh (a hot, heavily re-read set).
        for status in rng.sample(
            ctx.ns.status_files, k=min(len(ctx.ns.status_files), rng.randint(4, 12))
        ):
            yield from read_whole(ctx, status)
    else:
        # ls or a command that touches no files beyond its own binary.
        yield ctx.delay()

    if rng.random() < 0.30:
        # Many commands consult the network tables (finger, rlogin, mail
        # delivery all did): a positioned small read of a ~1 MB file.
        from .admin import lookup_table

        yield from lookup_table(ctx)
    if rng.random() < 0.40:
        # Process accounting: an append to the accounting log.
        from .base import append_file

        yield from append_file(ctx, ctx.ns.admin_files[0], rng.randint(64, 512))
