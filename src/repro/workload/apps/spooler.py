"""Print spooling.

The paper lists printer spool files among the explanations for short
lifetimes "in a word-processing environment": a document is copied into
the spool directory, the line-printer daemon reads it and deletes it a
short while later.  Both halves run in one activity, separated by the
queue wait.
"""

from __future__ import annotations

from .base import AppContext, read_whole, read_whole_slow, write_whole

__all__ = ["print_file"]


def print_file(ctx: AppContext):
    """lpr: copy the document to the spool area; lpd prints and deletes."""
    rng = ctx.rng
    document = rng.choice(ctx.ns.docs[ctx.uid])
    ctx.fs.execve("/bin/cmd006", uid=ctx.uid)  # lpr
    yield ctx.delay()
    yield from read_whole(ctx, document)
    spool = ctx.ns.spool_path(ctx.next_serial() + ctx.uid * 1_000_000)
    yield from write_whole(ctx, spool, ctx.size_of(document))
    # Queue wait, then the daemon side: the printer drains the file far
    # slower than the disk supplies it, so the spool file stays open for
    # a long stretch — part of Figure 3's long tail.
    yield rng.uniform(5.0, 90.0)
    ctx.fs.execve("/bin/cmd007", uid=ctx.uid)  # lpd
    yield ctx.delay()
    yield from read_whole_slow(ctx, spool, 2.0, 15.0)
    ctx.fs.unlink(spool)
    yield ctx.delay()
