"""The network status daemons.

Figure 4's most striking feature is the 30–40% of new-file lifetimes
concentrated at 179–181 seconds, which the paper attributes to "network
daemons that update each of about 20 host status files every three
minutes" (``rwhod`` behaviour peculiar to 4.2 BSD).  This process
reproduces it exactly: every ``period`` seconds it rewrites each host
status file from scratch, so each file's data lives one period, give or
take the few hundred milliseconds the rewrite pass takes — exactly the
179–181 s spread the paper reports.
"""

from __future__ import annotations

from .base import AppContext, write_whole

__all__ = ["status_daemon"]


def status_daemon(ctx: AppContext, period: float = 180.0):
    """Run forever, rewriting every host status file each *period*."""
    rng = ctx.rng
    # Stagger within the first period so all machines' daemons do not fire
    # in the same instant.
    yield rng.uniform(0.0, period / 10.0)
    while True:
        start = ctx.clock.now()
        for path in ctx.ns.status_files:
            size = rng.randint(800, 2200)
            yield from write_whole(ctx, path, size)
            yield rng.uniform(0.01, 0.05)
        elapsed = ctx.clock.now() - start
        yield max(0.0, period - elapsed)
