"""Random-variate helpers for the workload models.

Every distribution here takes the component's own ``random.Random`` so a
profile plus a seed determines a trace bit-for-bit.  The shapes are chosen
to reproduce the paper's empirical curves: file sizes are a mixture heavy
in the 100 B – 10 KB range (Figure 2), think times are bursty (short gaps
inside a burst, long idle periods between bursts — Section 5.1), and
transfer granules cluster at the 1 KB / 4 KB stdio buffer sizes that put
the visible jumps in Figure 1(a).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "bounded_lognormal",
    "bounded_exponential",
    "Mixture",
    "WeightedChoice",
    "BurstyThinkTime",
    "DiurnalPattern",
    "zipf_weights",
]


def bounded_lognormal(
    rng: random.Random, median: float, sigma: float, low: float, high: float
) -> float:
    """A lognormal variate with the given *median*, clamped to [low, high].

    Lognormals match the long right tail of observed file sizes while
    keeping the mass near the median.
    """
    if low > high:
        raise ValueError(f"low {low} > high {high}")
    value = rng.lognormvariate(math.log(median), sigma)
    return min(high, max(low, value))


def bounded_exponential(
    rng: random.Random, mean: float, low: float = 0.0, high: float = math.inf
) -> float:
    """An exponential variate with *mean*, clamped to [low, high]."""
    return min(high, max(low, rng.expovariate(1.0 / mean)))


@dataclass(frozen=True)
class Mixture:
    """A finite mixture of (weight, sampler) components."""

    components: Sequence[tuple[float, object]]

    def sample(self, rng: random.Random) -> float:
        total = sum(w for w, _ in self.components)
        pick = rng.random() * total
        acc = 0.0
        for weight, sampler in self.components:
            acc += weight
            if pick <= acc:
                return sampler(rng)  # type: ignore[operator]
        # Floating-point slack: fall through to the last component.
        return self.components[-1][1](rng)  # type: ignore[operator]


class WeightedChoice:
    """Pick among labelled alternatives with fixed weights."""

    def __init__(self, weighted_items: Sequence[tuple[object, float]]):
        if not weighted_items:
            raise ValueError("WeightedChoice needs at least one item")
        self._items = [item for item, _ in weighted_items]
        self._weights = [w for _, w in weighted_items]
        if min(self._weights) < 0:
            raise ValueError("negative weight")
        if sum(self._weights) <= 0:
            raise ValueError("weights sum to zero")

    def sample(self, rng: random.Random):
        return rng.choices(self._items, weights=self._weights, k=1)[0]


@dataclass(frozen=True)
class BurstyThinkTime:
    """The two-state think-time model behind the paper's burstiness.

    Inside a burst, gaps between a user's activities are short
    (exponential, ``burst_mean`` seconds).  With probability ``idle_prob``
    the user instead goes idle for an exponential ``idle_mean`` period —
    reading the listing, being in a meeting, at lunch.  This produces the
    "occasional (though bursty)" per-user activity of Section 5.1: high
    rates over 10-second windows, low averages over 10-minute windows.
    """

    burst_mean: float = 2.0
    idle_mean: float = 300.0
    idle_prob: float = 0.12
    minimum: float = 0.05

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.idle_prob:
            return bounded_exponential(rng, self.idle_mean, low=self.minimum)
        return bounded_exponential(rng, self.burst_mean, low=self.minimum)


@dataclass(frozen=True)
class DiurnalPattern:
    """Day/night load modulation.

    The paper's traces ran for 2-3 days "during the busiest part of the
    work week", with a pronounced daily rhythm ("during the peak hours of
    the day, about 2-3 files were opened per second").  This pattern
    scales think times by time of day: multiplier 1.0 at the afternoon
    peak rising smoothly (cosine) to ``night_slowdown`` in the middle of
    the night — a slowdown of 8 means an eighth of the daytime activity.
    """

    peak_hour: float = 15.0  # mid-afternoon
    night_slowdown: float = 8.0
    day_seconds: float = 24 * 3600.0

    def __post_init__(self):
        if self.night_slowdown < 1.0:
            raise ValueError("night_slowdown must be >= 1")
        if self.day_seconds <= 0:
            raise ValueError("day_seconds must be positive")

    def think_multiplier(self, now: float) -> float:
        """Factor to stretch a think time sampled at simulated time *now*."""
        phase = 2 * math.pi * (now / self.day_seconds - self.peak_hour / 24.0)
        # cos(phase)=1 at the peak, -1 twelve hours away.
        depth = (1.0 - math.cos(phase)) / 2.0  # 0 at peak, 1 at trough
        return 1.0 + (self.night_slowdown - 1.0) * depth


def zipf_weights(n: int, skew: float = 1.0) -> list[float]:
    """Zipf-like popularity weights for *n* items (item 0 most popular).

    Used for file popularity inside a category: a handful of headers,
    commands and libraries absorb most of the re-reads, which is what
    gives the disk caches of Section 6 their read locality.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0 / (i + 1) ** skew for i in range(n)]
