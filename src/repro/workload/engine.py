"""The discrete-event engine driving the synthetic users.

Processes are plain Python generators that yield the number of simulated
seconds to sleep; the engine resumes them in time order against the shared
:class:`~repro.clock.Clock`.  A multi-day trace therefore generates in
seconds of real time, and interleaving between users is faithful — an
editor session's operations weave between a long CAD run exactly as
scheduled.

Usage::

    engine = Engine(clock)
    engine.spawn(user_session(...))
    engine.spawn(status_daemon(...), delay=5.0)
    engine.run(until=3600.0)
"""

from __future__ import annotations

import heapq
from typing import Generator, Iterator

from ..clock import Clock

__all__ = ["Engine", "Process"]

#: A workload process: yields sleep durations in simulated seconds.
Process = Generator[float, None, None]


class Engine:
    """A minimal deterministic discrete-event simulator."""

    def __init__(self, clock: Clock):
        self.clock = clock
        self._heap: list[tuple[float, int, Process]] = []
        self._seq = 0  # tie-breaker keeps same-time resumption FIFO
        self.resumptions = 0

    def spawn(self, process: Process, delay: float = 0.0) -> None:
        """Schedule *process* to start *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative spawn delay {delay}")
        heapq.heappush(self._heap, (self.clock.now() + delay, self._seq, process))
        self._seq += 1

    @property
    def pending(self) -> int:
        """Number of processes waiting to run."""
        return len(self._heap)

    def run(self, until: float) -> None:
        """Run until the virtual clock reaches *until* or no work remains.

        Processes scheduled past the horizon stay unresumed (their
        generators are closed so finally-blocks run).
        """
        while self._heap and self._heap[0][0] <= until:
            when, _seq, process = heapq.heappop(self._heap)
            self.clock.set(max(self.clock.now(), when))
            self.resumptions += 1
            try:
                delay = next(process)
            except StopIteration:
                continue
            if delay is None or delay < 0:
                raise ValueError(
                    f"process yielded invalid delay {delay!r}; processes must "
                    "yield non-negative sleep durations"
                )
            heapq.heappush(
                self._heap, (self.clock.now() + delay, self._seq, process)
            )
            self._seq += 1
        # Horizon reached: let remaining processes clean up.
        if self.clock.now() < until:
            self.clock.set(until)
        for _when, _seq, process in self._heap:
            process.close()
        self._heap.clear()
