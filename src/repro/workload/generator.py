"""The trace generator: run a machine profile, capture the trace.

This stands in for the paper's instrumented production machines: build the
initial namespace (untraced — the real disks were already populated when
tracing began), attach the kernel tracer, spawn one session per user plus
the network status daemons, run the discrete-event engine for the desired
duration and hand back the trace.

A profile plus a seed determines the trace bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..clock import Clock
from ..trace.log import TraceLog
from ..unixfs.buffercache import BufferCache
from ..unixfs.filesystem import FileSystem
from ..unixfs.geometry import Geometry
from ..unixfs.tracer import KernelTracer
from .apps import ACTIVITIES
from .apps.base import AppContext
from .apps.statusdaemon import status_daemon
from .distributions import WeightedChoice
from .engine import Engine
from .namespace import build_namespace
from .profiles import MachineProfile
from .users import user_session

__all__ = ["GenerationResult", "generate", "generate_trace"]

#: Device large enough that multi-day syntheses never hit ENOSPC.
_DEVICE_BYTES = 2 * 1024 * 1024 * 1024


@dataclass
class GenerationResult:
    """What :func:`generate` returns."""

    trace: TraceLog
    fs: FileSystem
    profile: MachineProfile
    seed: int
    duration: float
    engine_resumptions: int


def generate(
    profile: MachineProfile,
    seed: int = 0,
    duration: float = 4 * 3600.0,
) -> GenerationResult:
    """Run *profile* for *duration* simulated seconds; return trace + system."""
    root_rng = random.Random(seed)
    clock = Clock()
    fs = FileSystem(
        geometry=Geometry(total_bytes=_DEVICE_BYTES),
        clock=clock,
        buffer_cache=BufferCache(capacity_bytes=profile.buffer_cache_bytes),
    )

    ns = build_namespace(
        fs, profile.namespace, random.Random(root_rng.randrange(2**63))
    )

    # Attach the tracer only now: setup traffic is not part of the trace.
    # Reset the kernel's own counters too, so the returned system's
    # statistics line up with the trace (the real machines' disks were
    # already populated when tracing began).
    tracer = KernelTracer(name=profile.trace_name)
    tracer.log.description = profile.description
    fs.tracer = tracer
    fs.syscall_counts.clear()
    fs.total_bytes_read = 0
    fs.total_bytes_written = 0
    fs.buffer_cache.stats = type(fs.buffer_cache.stats)()

    engine = Engine(clock)
    mix = WeightedChoice(
        [(ACTIVITIES[name], weight) for name, weight in profile.activity_mix]
    )
    for uid in range(1, profile.n_users + 1):
        ctx = AppContext(
            fs=fs,
            ns=ns,
            rng=random.Random(root_rng.randrange(2**63)),
            uid=uid,
            clock=clock,
            io_delay_mean=profile.io_delay_mean,
        )
        engine.spawn(user_session(ctx, mix, profile.think, profile.diurnal))

    daemon_ctx = AppContext(
        fs=fs,
        ns=ns,
        rng=random.Random(root_rng.randrange(2**63)),
        uid=0,
        clock=clock,
        io_delay_mean=profile.io_delay_mean,
    )
    engine.spawn(status_daemon(daemon_ctx, period=profile.status_daemon_period))

    engine.run(until=duration)
    return GenerationResult(
        trace=tracer.log,
        fs=fs,
        profile=profile,
        seed=seed,
        duration=duration,
        engine_resumptions=engine.resumptions,
    )


def generate_trace(
    profile: MachineProfile, seed: int = 0, duration: float = 4 * 3600.0
) -> TraceLog:
    """Convenience wrapper returning just the trace."""
    return generate(profile, seed=seed, duration=duration).trace
