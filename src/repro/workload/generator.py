"""The trace generator: run a machine profile, capture the trace.

This stands in for the paper's instrumented production machines: build the
initial namespace (untraced — the real disks were already populated when
tracing began), attach the kernel tracer, spawn one session per user plus
the network status daemons, run the discrete-event engine for the desired
duration and hand back the trace.

A profile plus a seed determines the trace bit-for-bit — in memory, to a
bounded-memory spool file (``spool=...``), serial or on a process pool
(:func:`generate_many`); every route yields the identical event sequence.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import IO, Sequence, Union

from ..clock import Clock
from ..parallel.executor import run_jobs
from ..trace.io_binary import TraceSpool
from ..trace.log import TraceLog
from ..unixfs.buffercache import BufferCache
from ..unixfs.filesystem import FileSystem
from ..unixfs.geometry import Geometry
from ..unixfs.tracer import KernelTracer
from .apps import ACTIVITIES
from .apps.base import AppContext
from .apps.statusdaemon import status_daemon
from .distributions import WeightedChoice
from .engine import Engine
from .namespace import build_namespace
from .profiles import MachineProfile
from .users import user_session

__all__ = [
    "GenerationResult",
    "SpoolSummary",
    "generate",
    "generate_many",
    "generate_trace",
]

#: Device large enough that multi-day syntheses never hit ENOSPC.
_DEVICE_BYTES = 2 * 1024 * 1024 * 1024

_PathOrFile = Union[str, os.PathLike, IO[bytes]]


@dataclass
class GenerationResult:
    """What :func:`generate` returns.

    In spool mode (``spool=...``) the events went straight to the binary
    file: ``trace`` is ``None`` and the spool fields describe what was
    written (``peak_buffered`` is the largest number of events ever
    resident at once — bounded by the spool buffer).
    ``segments_spooled`` is nonzero only for corpus spools (a
    ``.bcorpus`` path), which shard the trace as they write.
    """

    trace: TraceLog | None
    fs: FileSystem
    profile: MachineProfile
    seed: int
    duration: float
    engine_resumptions: int
    spool_path: str | None = None
    events_spooled: int = 0
    peak_buffered: int = 0
    segments_spooled: int = 0


def generate(
    profile: MachineProfile,
    seed: int = 0,
    duration: float = 4 * 3600.0,
    spool: _PathOrFile | None = None,
    spool_buffer: int = 8192,
) -> GenerationResult:
    """Run *profile* for *duration* simulated seconds; return trace + system.

    With ``spool`` set, events stream incrementally to that binary trace
    file through a buffer of at most *spool_buffer* events, so memory
    stays O(buffer) however long the synthesis runs.  A spool path ending
    in ``.bcorpus`` emits a sharded :mod:`repro.corpus` file instead of a
    flat ``.btrace``, with *spool_buffer* as the segment size.
    """
    root_rng = random.Random(seed)
    clock = Clock()
    fs = FileSystem(
        geometry=Geometry(total_bytes=_DEVICE_BYTES),
        clock=clock,
        buffer_cache=BufferCache(capacity_bytes=profile.buffer_cache_bytes),
    )

    ns = build_namespace(
        fs, profile.namespace, random.Random(root_rng.randrange(2**63))
    )

    # Attach the tracer only now: setup traffic is not part of the trace.
    # Reset the kernel's own counters too, so the returned system's
    # statistics line up with the trace (the real machines' disks were
    # already populated when tracing began).
    if spool is None:
        sink = None
    elif not hasattr(spool, "write") and os.fspath(spool).endswith(".bcorpus"):
        from ..corpus.writer import CorpusSpool

        sink = CorpusSpool(
            spool, name=profile.trace_name, buffer_events=spool_buffer
        )
    else:
        sink = TraceSpool(
            spool, name=profile.trace_name, buffer_events=spool_buffer
        )
    tracer = KernelTracer(log=sink, name=profile.trace_name)
    tracer.log.description = profile.description
    fs.tracer = tracer
    fs.syscall_counts.clear()
    fs.total_bytes_read = 0
    fs.total_bytes_written = 0
    fs.buffer_cache.stats = type(fs.buffer_cache.stats)()

    engine = Engine(clock)
    mix = WeightedChoice(
        [(ACTIVITIES[name], weight) for name, weight in profile.activity_mix]
    )
    for uid in range(1, profile.n_users + 1):
        ctx = AppContext(
            fs=fs,
            ns=ns,
            rng=random.Random(root_rng.randrange(2**63)),
            uid=uid,
            clock=clock,
            io_delay_mean=profile.io_delay_mean,
        )
        engine.spawn(user_session(ctx, mix, profile.think, profile.diurnal))

    daemon_ctx = AppContext(
        fs=fs,
        ns=ns,
        rng=random.Random(root_rng.randrange(2**63)),
        uid=0,
        clock=clock,
        io_delay_mean=profile.io_delay_mean,
    )
    engine.spawn(status_daemon(daemon_ctx, period=profile.status_daemon_period))

    engine.run(until=duration)
    if sink is not None:
        sink.close()
        return GenerationResult(
            trace=None,
            fs=fs,
            profile=profile,
            seed=seed,
            duration=duration,
            engine_resumptions=engine.resumptions,
            spool_path=None if hasattr(spool, "write") else os.fspath(spool),
            events_spooled=sink.events_spooled,
            peak_buffered=sink.peak_buffered,
            segments_spooled=getattr(sink, "segments_spooled", 0),
        )
    return GenerationResult(
        trace=tracer.log,
        fs=fs,
        profile=profile,
        seed=seed,
        duration=duration,
        engine_resumptions=engine.resumptions,
    )


def generate_trace(
    profile: MachineProfile, seed: int = 0, duration: float = 4 * 3600.0
) -> TraceLog:
    """Convenience wrapper returning just the trace."""
    return generate(profile, seed=seed, duration=duration).trace


# -- multi-seed / multi-machine generation -----------------------------------


@dataclass(frozen=True)
class SpoolSummary:
    """One spooled generation: where the trace went and how big it got.

    ``segments`` is nonzero only for corpus outputs (``.bcorpus``).
    """

    trace_name: str
    seed: int
    path: str
    events: int
    peak_buffered: int
    segments: int = 0


def _generate_job(payload, job):
    """Module-level worker for :func:`run_jobs` (must be picklable)."""
    duration, spool_buffer = payload
    profile, seed, output = job
    result = generate(
        profile, seed=seed, duration=duration, spool=output, spool_buffer=spool_buffer
    )
    if output is None:
        return result.trace
    return SpoolSummary(
        trace_name=profile.trace_name,
        seed=seed,
        path=result.spool_path,
        events=result.events_spooled,
        peak_buffered=result.peak_buffered,
        segments=result.segments_spooled,
    )


def generate_many(
    profile_seeds: Sequence[tuple[MachineProfile, int]],
    duration: float = 4 * 3600.0,
    jobs: int | None = None,
    outputs: Sequence[Union[str, os.PathLike]] | None = None,
    spool_buffer: int = 8192,
) -> list:
    """Generate several traces, in parallel when *jobs* allows.

    Each ``(profile, seed)`` pair runs as one job on the sweep executor
    (``jobs=None`` picks up the ambient ``--jobs`` context, defaulting to
    serial).  With ``outputs`` unset the traces come back as in-memory
    :class:`~repro.trace.log.TraceLog`\\ s, in input order; with
    ``outputs`` (one path per pair) each worker spools its trace to disk
    with bounded memory and a :class:`SpoolSummary` comes back instead.
    Results are identical to running :func:`generate` serially — the
    profile+seed fully determines each trace.
    """
    if outputs is not None and len(outputs) != len(profile_seeds):
        raise ValueError(
            f"need one output per (profile, seed) pair: "
            f"{len(outputs)} outputs for {len(profile_seeds)} pairs"
        )
    seen_pairs: set[tuple[str, int]] = set()
    for profile, seed in profile_seeds:
        pair = (profile.trace_name, seed)
        if pair in seen_pairs:
            raise ValueError(
                f"duplicate (profile, seed) pair {pair}: identical jobs "
                "would produce identical traces"
            )
        seen_pairs.add(pair)
    if outputs is not None:
        seen_paths: set[str] = set()
        for output in outputs:
            path = os.fspath(output)
            if path in seen_paths:
                raise ValueError(
                    f"duplicate output path {path!r}: parallel workers "
                    "would clobber each other's spool"
                )
            seen_paths.add(path)
    jobs_list = [
        (profile, seed, None if outputs is None else outputs[i])
        for i, (profile, seed) in enumerate(profile_seeds)
    ]
    return run_jobs(
        _generate_job,
        jobs_list,
        payload=(duration, spool_buffer),
        jobs=jobs,
        timeout=None,
    )
