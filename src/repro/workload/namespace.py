"""The initial file tree the synthetic users work in.

Before any user activity, a Berkeley-style namespace is laid down: shared
command binaries in ``/bin`` and ``/usr/bin``, C headers in
``/usr/include``, libraries in ``/usr/lib``, the handful of ~1 MB
administrative files (network tables, the login log) that Figure 2 blames
for the large-file tail, per-user home directories with source trees,
documents and mailboxes, spool directories, and ``/tmp``.

The :class:`Namespace` object records the category of every pre-built file
so the application models can choose realistically (a compile reads *some
popular subset* of headers; the status daemons rewrite *their own* host
files; and so on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..trace.records import AccessMode
from ..unixfs.filesystem import FileSystem
from .distributions import bounded_lognormal, zipf_weights

__all__ = ["NamespaceConfig", "Namespace", "build_namespace"]


@dataclass(frozen=True)
class NamespaceConfig:
    """Knobs for the initial tree (defaults resemble a 1985 Berkeley VAX)."""

    n_users: int = 20
    commands: int = 80  # /bin + /usr/bin binaries
    headers: int = 40  # /usr/include
    libraries: int = 8  # /usr/lib
    admin_files: int = 4  # ~1 MB network tables / login logs
    passwd_size: int = 8 * 1024
    termcap_size: int = 100 * 1024
    hosts: int = 20  # per-host status files the daemons rewrite
    sources_per_user: int = 8
    docs_per_user: int = 5
    decks_per_user: int = 3  # CAD circuit decks (used by the cad profile)

    command_size_median: float = 24 * 1024
    header_size_median: float = 2 * 1024
    library_size_median: float = 80 * 1024
    admin_file_size: int = 1 * 1024 * 1024
    source_size_median: float = 4 * 1024
    doc_size_median: float = 6 * 1024
    deck_size_median: float = 60 * 1024


@dataclass
class Namespace:
    """Paths of the pre-built tree, grouped by role, plus popularity weights."""

    config: NamespaceConfig
    commands: list[str] = field(default_factory=list)
    headers: list[str] = field(default_factory=list)
    libraries: list[str] = field(default_factory=list)
    admin_files: list[str] = field(default_factory=list)
    etc_files: dict[str, str] = field(default_factory=dict)
    macros: list[str] = field(default_factory=list)
    admin_hotspots: dict[str, list[int]] = field(default_factory=dict)
    admin_hotspot_weights: list[float] = field(default_factory=list)
    status_files: list[str] = field(default_factory=list)
    mailboxes: dict[int, str] = field(default_factory=dict)
    home_dirs: dict[int, str] = field(default_factory=dict)
    sources: dict[int, list[str]] = field(default_factory=dict)
    docs: dict[int, list[str]] = field(default_factory=dict)
    decks: dict[int, list[str]] = field(default_factory=dict)
    command_weights: list[float] = field(default_factory=list)
    header_weights: list[float] = field(default_factory=list)

    def pick_admin_offset(self, rng: random.Random, path: str) -> int:
        """A lookup offset in an administrative file.

        Lookups concentrate on popular entries (the same hosts and users
        come up again and again), so offsets are drawn Zipf-style from a
        fixed set of hotspots — this is the read locality that lets even
        the 1 MB network tables cache well (Section 6).
        """
        spots = self.admin_hotspots[path]
        return rng.choices(spots, weights=self.admin_hotspot_weights, k=1)[0]

    def pick_command(self, rng: random.Random) -> str:
        return rng.choices(self.commands, weights=self.command_weights, k=1)[0]

    def pick_headers(self, rng: random.Random, count: int) -> list[str]:
        """A compile's header set: popular headers repeat across compiles."""
        count = min(count, len(self.headers))
        picked: list[str] = []
        seen: set[str] = set()
        while len(picked) < count:
            h = rng.choices(self.headers, weights=self.header_weights, k=1)[0]
            if h not in seen:
                seen.add(h)
                picked.append(h)
        return picked

    def tmp_path(self, uid: int, tag: str, serial: int) -> str:
        return f"/tmp/{tag}{uid}_{serial}"

    def spool_path(self, serial: int) -> str:
        return f"/usr/spool/lpd/df{serial:06d}"


def _size(rng: random.Random, median: float, sigma: float = 1.0,
          low: float = 64, high: float = 10 * 1024 * 1024) -> int:
    return int(bounded_lognormal(rng, median, sigma, low, high))


def build_namespace(
    fs: FileSystem, config: NamespaceConfig, rng: random.Random
) -> Namespace:
    """Populate *fs* with the initial tree and return its map.

    All construction writes go through the normal syscall layer, so run
    this *before* attaching the tracer (or accept the setup events in the
    trace; the generator builds first and traces after, like the real
    systems whose disks were already populated when tracing began).
    """
    ns = Namespace(config=config)
    for d in (
        "/bin", "/usr", "/usr/bin", "/usr/include", "/usr/lib", "/usr/adm",
        "/usr/spool", "/usr/spool/lpd", "/usr/spool/mail", "/etc", "/tmp",
        "/usr/hosts",
    ):
        fs.makedirs(d)

    def create(path: str, size: int, uid: int = 0) -> None:
        fd = fs.open(path, AccessMode.WRITE, uid=uid, create=True)
        if size:
            fs.write(fd, size)
        fs.close(fd)

    for i in range(config.commands):
        where = "/bin" if i < config.commands // 3 else "/usr/bin"
        path = f"{where}/cmd{i:03d}"
        create(path, _size(rng, config.command_size_median, sigma=0.9, low=4096))
        ns.commands.append(path)
    ns.command_weights = zipf_weights(len(ns.commands), skew=1.1)

    for i in range(config.headers):
        path = f"/usr/include/h{i:03d}.h"
        create(path, _size(rng, config.header_size_median, sigma=0.8, low=128,
                           high=64 * 1024))
        ns.headers.append(path)
    ns.header_weights = zipf_weights(len(ns.headers), skew=1.2)

    # The nroff/troff macro packages: small, shared, re-read by every
    # formatting run (document formatting is half of what Ucbarpa and
    # Ucbernie did).
    for name, size in (("tmac.s", 18 * 1024), ("tmac.an", 14 * 1024),
                       ("tmac.e", 22 * 1024)):
        path = f"/usr/lib/{name}"
        create(path, size)
        ns.macros.append(path)

    for i in range(config.libraries):
        path = f"/usr/lib/lib{i}.a"
        create(path, _size(rng, config.library_size_median, sigma=0.6, low=16 * 1024))
        ns.libraries.append(path)

    # The hot /etc files every program of the era consulted: password and
    # group maps on most command invocations, termcap on every
    # screen-oriented program start, motd at login.  Their constant
    # re-reading is a large share of read traffic and the main source of
    # the cache's read locality (Section 6) — and of the upturn in
    # Figure 6 when huge blocks leave the cache with too few entries.
    for name, size in (
        ("passwd", config.passwd_size),
        ("group", 2 * 1024),
        ("termcap", config.termcap_size),
        ("motd", 1536),
        ("utmp", 4 * 1024),
    ):
        path = f"/etc/{name}"
        create(path, size)
        ns.etc_files[name] = path

    for i in range(config.admin_files):
        path = f"/usr/adm/admin{i}"
        create(path, config.admin_file_size)
        ns.admin_files.append(path)
        ns.admin_hotspots[path] = [
            rng.randrange(config.admin_file_size) for _ in range(64)
        ]
    ns.admin_hotspot_weights = zipf_weights(64, skew=1.0)

    for i in range(config.hosts):
        path = f"/usr/hosts/host{i:02d}"
        create(path, _size(rng, 1500, sigma=0.3, low=512, high=4096))
        ns.status_files.append(path)

    for uid in range(1, config.n_users + 1):
        home = f"/usr/u{uid}"
        fs.makedirs(home, uid=uid)
        ns.home_dirs[uid] = home
        mailbox = f"/usr/spool/mail/u{uid}"
        create(mailbox, _size(rng, 8192, sigma=1.2, low=0, high=200 * 1024), uid=uid)
        ns.mailboxes[uid] = mailbox
        ns.sources[uid] = []
        for j in range(config.sources_per_user):
            path = f"{home}/src{j:02d}.c"
            create(path, _size(rng, config.source_size_median, sigma=1.0,
                               low=128, high=200 * 1024), uid=uid)
            ns.sources[uid].append(path)
        ns.docs[uid] = []
        for j in range(config.docs_per_user):
            path = f"{home}/doc{j:02d}"
            create(path, _size(rng, config.doc_size_median, sigma=1.1,
                               low=256, high=500 * 1024), uid=uid)
            ns.docs[uid].append(path)
        ns.decks[uid] = []
        for j in range(config.decks_per_user):
            path = f"{home}/deck{j:02d}"
            create(path, _size(rng, config.deck_size_median, sigma=0.8,
                               low=4 * 1024, high=2 * 1024 * 1024), uid=uid)
            ns.decks[uid].append(path)

    return ns
