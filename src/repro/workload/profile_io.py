"""Machine profiles as data: load and save profiles from JSON.

The three built-in profiles reproduce the paper's machines, but a trace
toolkit should let its users describe *their* machine — a different
activity mix, population, memory size or daily rhythm — without writing
Python.  A profile file is a JSON object; unknown keys are rejected so
typos fail loudly:

.. code-block:: json

    {
        "name": "mylab",
        "trace_name": "L1",
        "description": "a small research lab",
        "n_users": 12,
        "memory_mb": 8,
        "activity_mix": {"compile": 0.4, "shell": 0.4, "edit": 0.2},
        "think": {"burst_mean": 3.0, "idle_mean": 900.0, "idle_prob": 0.2},
        "diurnal": {"peak_hour": 14.0, "night_slowdown": 6.0}
    }
"""

from __future__ import annotations

import json
from typing import Any

from .apps import ACTIVITIES
from .distributions import BurstyThinkTime, DiurnalPattern
from .profiles import MachineProfile

__all__ = ["profile_from_dict", "profile_to_dict", "load_profile", "save_profile"]

_TOP_KEYS = {
    "name", "trace_name", "description", "n_users", "memory_mb",
    "activity_mix", "think", "diurnal", "status_daemon_period",
    "io_delay_mean",
}


def profile_from_dict(data: dict[str, Any]) -> MachineProfile:
    """Build a :class:`MachineProfile` from plain data (see module docs)."""
    unknown = set(data) - _TOP_KEYS
    if unknown:
        raise ValueError(f"unknown profile keys: {sorted(unknown)}")
    for required in ("name", "n_users", "memory_mb", "activity_mix"):
        if required not in data:
            raise ValueError(f"profile missing required key {required!r}")

    mix = data["activity_mix"]
    if not isinstance(mix, dict) or not mix:
        raise ValueError("activity_mix must be a non-empty mapping")
    bad = set(mix) - set(ACTIVITIES)
    if bad:
        raise ValueError(
            f"unknown activities {sorted(bad)}; known: {sorted(ACTIVITIES)}"
        )

    think = BurstyThinkTime(**data["think"]) if "think" in data else BurstyThinkTime()
    diurnal = (
        DiurnalPattern(**data["diurnal"]) if data.get("diurnal") else None
    )
    return MachineProfile(
        name=data["name"],
        trace_name=data.get("trace_name", data["name"]),
        description=data.get("description", ""),
        n_users=int(data["n_users"]),
        memory_bytes=int(data["memory_mb"] * 1024 * 1024),
        activity_mix=tuple(sorted(mix.items())),
        think=think,
        diurnal=diurnal,
        status_daemon_period=float(data.get("status_daemon_period", 180.0)),
        io_delay_mean=float(data.get("io_delay_mean", 0.02)),
    )


def profile_to_dict(profile: MachineProfile) -> dict[str, Any]:
    """The JSON-ready representation of *profile* (round-trips through
    :func:`profile_from_dict` up to namespace defaults)."""
    data: dict[str, Any] = {
        "name": profile.name,
        "trace_name": profile.trace_name,
        "description": profile.description,
        "n_users": profile.n_users,
        "memory_mb": profile.memory_bytes / (1024 * 1024),
        "activity_mix": dict(profile.activity_mix),
        "think": {
            "burst_mean": profile.think.burst_mean,
            "idle_mean": profile.think.idle_mean,
            "idle_prob": profile.think.idle_prob,
            "minimum": profile.think.minimum,
        },
        "status_daemon_period": profile.status_daemon_period,
        "io_delay_mean": profile.io_delay_mean,
    }
    if profile.diurnal is not None:
        data["diurnal"] = {
            "peak_hour": profile.diurnal.peak_hour,
            "night_slowdown": profile.diurnal.night_slowdown,
            "day_seconds": profile.diurnal.day_seconds,
        }
    return data


def load_profile(path: str) -> MachineProfile:
    """Read a profile JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return profile_from_dict(json.load(fh))


def save_profile(profile: MachineProfile, path: str) -> None:
    """Write *profile* as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(profile_to_dict(profile), fh, indent=2)
        fh.write("\n")
