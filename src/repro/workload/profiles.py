"""Machine profiles for the three traced systems.

The paper gathered traces on three VAX-11/780s: Ucbarpa (trace A5) and
Ucbernie (E3), used for program development, document formatting and — on
Ucbernie — secretarial work, and Ucbcad (C4), used for VLSI CAD.  A
:class:`MachineProfile` captures what differed between them: the user
population, memory size (hence kernel buffer-cache size, 10% of memory),
and the activity mix.  Section 7 of the paper notes that the three traces
nonetheless produced very similar results; the profile defaults reproduce
that similarity because the *shapes* of the activities are shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .distributions import BurstyThinkTime, DiurnalPattern
from .namespace import NamespaceConfig

__all__ = ["MachineProfile", "UCBARPA", "UCBERNIE", "UCBCAD", "PROFILES"]


@dataclass(frozen=True)
class MachineProfile:
    """Everything needed to regenerate one machine's trace."""

    name: str
    trace_name: str
    description: str
    n_users: int
    memory_bytes: int
    activity_mix: tuple[tuple[str, float], ...]
    think: BurstyThinkTime = BurstyThinkTime()
    namespace: NamespaceConfig = field(default=None)  # type: ignore[assignment]
    status_daemon_period: float = 180.0
    #: Day/night modulation; None keeps activity flat (the default, right
    #: for the few-hour traces the tests and benches use).  Multi-day
    #: generations should set one to reproduce the paper's peak-hours
    #: rhythm.
    diurnal: DiurnalPattern | None = None
    io_delay_mean: float = 0.02

    def __post_init__(self):
        if self.namespace is None:
            object.__setattr__(
                self, "namespace", NamespaceConfig(n_users=self.n_users)
            )
        if self.namespace.n_users != self.n_users:
            raise ValueError(
                f"profile has {self.n_users} users but namespace built for "
                f"{self.namespace.n_users}"
            )

    @property
    def buffer_cache_bytes(self) -> int:
        """UNIX used about 10% of main memory for the block cache."""
        return self.memory_bytes // 10


UCBARPA = MachineProfile(
    name="ucbarpa",
    trace_name="A5",
    description=(
        "Graduate students and staff: program development and document "
        "formatting (4 Mbytes of memory)"
    ),
    n_users=35,
    memory_bytes=4 * 1024 * 1024,
    activity_mix=(
        ("compile", 0.17),
        ("run_tests", 0.06),
        ("edit", 0.08),
        ("quick_edit", 0.06),
        ("shell", 0.19),
        ("format", 0.06),
        ("send_mail", 0.07),
        ("read_mail", 0.07),
        ("lookup_table", 0.12),
        ("update_table", 0.03),
        ("check_log", 0.05),
        ("print", 0.04),
    ),
    think=BurstyThinkTime(burst_mean=3.0, idle_mean=1500.0, idle_prob=0.22),
)

UCBERNIE = MachineProfile(
    name="ucbernie",
    trace_name="E3",
    description=(
        "Program development plus substantial secretarial and "
        "administrative work (8 Mbytes of memory)"
    ),
    n_users=50,
    memory_bytes=8 * 1024 * 1024,
    activity_mix=(
        ("compile", 0.08),
        ("run_tests", 0.02),
        ("edit", 0.12),
        ("quick_edit", 0.10),
        ("shell", 0.16),
        ("format", 0.10),
        ("send_mail", 0.09),
        ("read_mail", 0.09),
        ("lookup_table", 0.12),
        ("update_table", 0.03),
        ("check_log", 0.04),
        ("print", 0.05),
    ),
    think=BurstyThinkTime(burst_mean=3.2, idle_mean=1400.0, idle_prob=0.22),
)

UCBCAD = MachineProfile(
    name="ucbcad",
    trace_name="C4",
    description=(
        "Electrical-engineering graduate students running VLSI CAD tools "
        "(16 Mbytes of memory, about ten active users)"
    ),
    n_users=16,
    memory_bytes=16 * 1024 * 1024,
    activity_mix=(
        ("cad_simulate", 0.16),
        ("cad_layout", 0.10),
        ("cad_drc", 0.08),
        ("compile", 0.08),
        ("shell", 0.16),
        ("format", 0.02),
        ("edit", 0.06),
        ("quick_edit", 0.04),
        ("send_mail", 0.04),
        ("read_mail", 0.05),
        ("lookup_table", 0.13),
        ("update_table", 0.02),
        ("check_log", 0.04),
        ("print", 0.02),
    ),
    think=BurstyThinkTime(burst_mean=3.5, idle_mean=1200.0, idle_prob=0.20),
)

#: Trace name -> profile, for CLI lookup (accepts either naming).
PROFILES = {
    "A5": UCBARPA,
    "E3": UCBERNIE,
    "C4": UCBCAD,
    "ucbarpa": UCBARPA,
    "ucbernie": UCBERNIE,
    "ucbcad": UCBCAD,
}
