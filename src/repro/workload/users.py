"""User sessions.

A session is the per-user top-level process: log in, then alternate
between activities drawn from the machine profile's mix and bursty think
times.  The think-time model (see
:class:`~repro.workload.distributions.BurstyThinkTime`) is what produces
the paper's Section 5.1 observation that users are only occasionally —
though burstily — active: a 10-second window catches a user mid-burst at
kilobytes per second, a 10-minute window averages to a few hundred bytes
per second.
"""

from __future__ import annotations

import random
from typing import Callable

from .apps import ACTIVITIES
from .apps.base import AppContext
from .apps.shell import login
from .distributions import BurstyThinkTime, DiurnalPattern, WeightedChoice

__all__ = ["user_session"]


def user_session(
    ctx: AppContext,
    mix: WeightedChoice,
    think: BurstyThinkTime,
    diurnal: DiurnalPattern | None = None,
):
    """The top-level generator for one user.

    Runs until the engine's horizon closes it; any file the current
    activity holds open is closed by the activity's own ``finally`` block
    when the generator is closed.
    """
    rng = ctx.rng
    # Stagger logins: not everyone arrives in the first second.
    yield rng.uniform(0.0, 120.0)
    yield from login(ctx)
    while True:
        activity: Callable = mix.sample(rng)
        yield from activity(ctx)
        pause = think.sample(rng)
        if diurnal is not None:
            pause *= diurnal.think_multiplier(ctx.clock.now())
        yield pause
