"""Shared fixtures.

``small_trace`` is a fast, deterministic synthetic trace shared by the
analysis/cache/experiment test modules (session-scoped: generation costs
a few hundred milliseconds and many modules want the same trace).
"""

from __future__ import annotations

import random

import pytest

from repro.clock import Clock
from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    OpenEvent,
    SeekEvent,
    UnlinkEvent,
)
from repro.unixfs.content import MemoryContentStore
from repro.unixfs.filesystem import FileSystem
from repro.unixfs.tracer import KernelTracer
from repro.workload.generator import generate
from repro.workload.profiles import UCBARPA


@pytest.fixture
def clock() -> Clock:
    return Clock()


@pytest.fixture
def fs(clock: Clock) -> FileSystem:
    """A plain file system with a memory content store (no tracing)."""
    return FileSystem(clock=clock, content=MemoryContentStore())


@pytest.fixture
def traced_fs(clock: Clock):
    """A (FileSystem, KernelTracer) pair."""
    tracer = KernelTracer(name="test")
    return FileSystem(clock=clock, tracer=tracer), tracer


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture(scope="session")
def small_trace() -> TraceLog:
    """A 20-minute A5 synthetic trace (deterministic, ~2k events)."""
    return generate(UCBARPA, seed=42, duration=1200.0).trace


@pytest.fixture(scope="session")
def medium_trace() -> TraceLog:
    """A 2-hour A5 synthetic trace for shape assertions."""
    return generate(UCBARPA, seed=7, duration=7200.0).trace


def make_simple_trace() -> TraceLog:
    """A tiny hand-built trace with one whole-file read, one seek-then-read
    and one created-then-unlinked file.  Used by several test modules."""
    events = [
        OpenEvent(time=0.0, open_id=1, file_id=10, user_id=1, size=8192,
                  mode=AccessMode.READ),
        CloseEvent(time=0.5, open_id=1, final_pos=8192),
        OpenEvent(time=1.0, open_id=2, file_id=11, user_id=2, size=100_000,
                  mode=AccessMode.READ),
        SeekEvent(time=1.1, open_id=2, prev_pos=0, new_pos=50_000),
        CloseEvent(time=1.5, open_id=2, final_pos=52_048),
        OpenEvent(time=2.0, open_id=3, file_id=12, user_id=1, size=0,
                  mode=AccessMode.WRITE, created=True, new_file=True),
        CloseEvent(time=2.4, open_id=3, final_pos=4096),
        UnlinkEvent(time=30.0, file_id=12),
    ]
    return TraceLog(name="simple", events=events)


@pytest.fixture
def simple_trace() -> TraceLog:
    return make_simple_trace()
