"""Tests for per-open access reconstruction (repro.analysis.accesses)."""

import pytest

from repro.analysis.accesses import iter_transfers, reconstruct_accesses
from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    OpenEvent,
    SeekEvent,
)


def _open(t, oid, size=0, mode=AccessMode.READ, pos=0, created=False):
    return OpenEvent(time=t, open_id=oid, file_id=oid, user_id=1, size=size,
                     mode=mode, created=created, initial_pos=pos)


def _one_access(events):
    accesses = reconstruct_accesses(TraceLog.from_events(events))
    assert len(accesses) == 1
    return accesses[0]


class TestWholeFileRead:
    def test_single_run_covering_file(self):
        a = _one_access([
            _open(0.0, 1, size=5000),
            CloseEvent(time=1.0, open_id=1, final_pos=5000),
        ])
        assert len(a.runs) == 1
        assert (a.runs[0].start, a.runs[0].end) == (0, 5000)
        assert a.whole_file
        assert a.sequential
        assert a.bytes_transferred == 5000
        assert a.runs[0].time == 1.0  # billed at close

    def test_partial_read_sequential_not_whole(self):
        a = _one_access([
            _open(0.0, 1, size=5000),
            CloseEvent(time=1.0, open_id=1, final_pos=3000),
        ])
        assert not a.whole_file
        assert a.sequential

    def test_zero_transfer_trivially_sequential(self):
        a = _one_access([
            _open(0.0, 1, size=5000),
            CloseEvent(time=1.0, open_id=1, final_pos=0),
        ])
        assert a.bytes_transferred == 0
        assert a.sequential
        assert not a.whole_file


class TestSeekPatterns:
    def test_initial_seek_then_read_is_sequential(self):
        a = _one_access([
            _open(0.0, 1, size=100_000),
            SeekEvent(time=0.1, open_id=1, prev_pos=0, new_pos=60_000),
            CloseEvent(time=1.0, open_id=1, final_pos=62_000),
        ])
        assert len(a.runs) == 1
        assert (a.runs[0].start, a.runs[0].end) == (60_000, 62_000)
        assert a.sequential
        assert not a.whole_file
        assert a.seeks == 1

    def test_seek_splits_two_runs_non_sequential(self):
        a = _one_access([
            _open(0.0, 1, size=100_000),
            SeekEvent(time=0.5, open_id=1, prev_pos=2000, new_pos=50_000),
            CloseEvent(time=1.0, open_id=1, final_pos=51_000),
        ])
        assert len(a.runs) == 2
        assert not a.sequential
        assert a.runs[0].time == 0.5   # billed at the seek
        assert a.runs[1].time == 1.0   # billed at close
        assert a.bytes_transferred == 3000

    def test_repositions_before_any_data_keep_sequential(self):
        # Two repositions before any transfer, then one uninterrupted run:
        # classified sequential (the data movement itself was one run; the
        # paper's wording covers the single-reposition case and we extend
        # it to reposition sequences that precede all data).
        a = _one_access([
            _open(0.0, 1, size=100),
            SeekEvent(time=0.1, open_id=1, prev_pos=0, new_pos=50),
            SeekEvent(time=0.2, open_id=1, prev_pos=50, new_pos=10),
            CloseEvent(time=1.0, open_id=1, final_pos=20),
        ])
        assert len(a.runs) == 1
        assert a.sequential
        assert not a.seek_after_data
        assert a.seeks == 2

    def test_seek_after_data_breaks_sequential_even_with_one_run(self):
        a = _one_access([
            _open(0.0, 1, size=100),
            SeekEvent(time=0.5, open_id=1, prev_pos=20, new_pos=90),
            CloseEvent(time=1.0, open_id=1, final_pos=90),
        ])
        assert len(a.runs) == 1
        assert a.seek_after_data
        assert not a.sequential

    def test_append_pattern(self):
        a = _one_access([
            _open(0.0, 1, size=1000, mode=AccessMode.WRITE),
            SeekEvent(time=0.1, open_id=1, prev_pos=0, new_pos=1000),
            CloseEvent(time=1.0, open_id=1, final_pos=1300),
        ])
        assert a.sequential
        assert not a.whole_file
        assert a.bytes_transferred == 300


class TestWholeFileWrite:
    def test_created_write_is_whole_file(self):
        a = _one_access([
            _open(0.0, 1, size=0, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=1.0, open_id=1, final_pos=7000),
        ])
        assert a.whole_file
        assert a.size_at_close == 7000

    def test_overwrite_from_zero_is_whole_file(self):
        a = _one_access([
            _open(0.0, 1, size=500, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=1.0, open_id=1, final_pos=900),
        ])
        assert a.whole_file

    def test_size_at_close_for_read_is_open_size(self):
        a = _one_access([
            _open(0.0, 1, size=5000),
            CloseEvent(time=1.0, open_id=1, final_pos=2000),
        ])
        assert a.size_at_close == 5000


class TestBookkeeping:
    def test_orphan_seek_and_close_dropped(self):
        log = TraceLog.from_events([
            SeekEvent(time=0.1, open_id=9, prev_pos=0, new_pos=5),
            CloseEvent(time=0.2, open_id=9, final_pos=10),
        ])
        assert reconstruct_accesses(log) == []

    def test_unclosed_open_dropped_by_default(self):
        log = TraceLog.from_events([_open(0.0, 1, size=10)])
        assert reconstruct_accesses(log) == []

    def test_unclosed_open_kept_when_asked(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=10),
            SeekEvent(time=5.0, open_id=1, prev_pos=10, new_pos=0),
        ])
        accesses = reconstruct_accesses(log, include_unclosed=True)
        assert len(accesses) == 1
        assert accesses[0].bytes_transferred == 10

    def test_results_sorted_by_close_time(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=10),
            _open(0.1, 2, size=10),
            CloseEvent(time=0.5, open_id=2, final_pos=10),
            CloseEvent(time=0.9, open_id=1, final_pos=10),
        ])
        accesses = reconstruct_accesses(log)
        assert [a.open_id for a in accesses] == [2, 1]

    def test_duration_is_open_to_close(self):
        a = _one_access([
            _open(1.0, 1, size=10),
            CloseEvent(time=4.5, open_id=1, final_pos=10),
        ])
        assert a.duration == pytest.approx(3.5)


class TestIterTransfers:
    def test_transfers_time_ordered_with_write_flag(self, simple_trace):
        transfers = list(iter_transfers(simple_trace))
        times = [t.time for t in transfers]
        assert times == sorted(times)
        assert any(t.is_write for t in transfers)
        assert any(not t.is_write for t in transfers)

    def test_read_write_mode_counts_as_write(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=100, mode=AccessMode.READ_WRITE),
            CloseEvent(time=1.0, open_id=1, final_pos=50),
        ])
        (t,) = iter_transfers(log)
        assert t.is_write

    def test_total_matches_stats(self, small_trace):
        from repro.trace.stats import total_bytes_transferred

        total = sum(t.length for t in iter_transfers(small_trace))
        assert total == total_bytes_transferred(small_trace)
