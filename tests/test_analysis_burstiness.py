"""Tests for the burstiness analysis and the simulator warmup checkpoint."""

import pytest

from repro.analysis.burstiness import analyze_burstiness
from repro.cache.metrics import CacheMetrics
from repro.cache.simulator import BlockCacheSimulator
from repro.cache.stream import build_stream
from repro.trace.log import TraceLog
from repro.trace.records import AccessMode, CloseEvent, OpenEvent


def _open(t, oid, uid=1, size=1000):
    return OpenEvent(time=t, open_id=oid, file_id=oid, user_id=uid, size=size,
                     mode=AccessMode.READ)


class TestBurstiness:
    def test_single_burst(self):
        events = []
        for i in range(10):  # ten opens in one second, then silence
            events.append(_open(0.1 * i, i))
            events.append(CloseEvent(time=0.1 * i + 0.05, open_id=i,
                                     final_pos=1000))
        events.append(_open(100.0, 99))
        events.append(CloseEvent(time=100.1, open_id=99, final_pos=0))
        log = TraceLog.from_events(events)
        report = analyze_burstiness(log, window=10.0)
        assert report.peak_open_rate == pytest.approx(1.0)  # 10 opens / 10 s
        assert report.peak_to_mean > 5.0
        assert report.idle_window_fraction > 0.5

    def test_uniform_activity_peak_near_mean(self):
        events = []
        for i in range(20):
            events.append(_open(10.0 * i, i))
            events.append(CloseEvent(time=10.0 * i + 1, open_id=i, final_pos=100))
        log = TraceLog.from_events(events)
        report = analyze_burstiness(log, window=10.0)
        assert report.peak_to_mean < 2.5
        assert report.idle_window_fraction < 0.2

    def test_max_user_rate(self):
        log = TraceLog.from_events([
            _open(0.0, 1, uid=7, size=50_000),
            CloseEvent(time=1.0, open_id=1, final_pos=50_000),
        ])
        report = analyze_burstiness(log, window=10.0)
        assert report.max_user_rate == pytest.approx(5000.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            analyze_burstiness(TraceLog(), window=0)

    def test_generated_trace_is_bursty(self, medium_trace):
        report = analyze_burstiness(medium_trace)
        # Section 8: "file system activity is bursty".
        assert report.peak_to_mean > 3.0
        assert 0.0 < report.idle_window_fraction < 0.9

    def test_render(self, small_trace):
        assert "peak" in analyze_burstiness(small_trace).render()


class TestWarmupCheckpoint:
    def test_delta_subtracts_counters(self):
        a = CacheMetrics(read_accesses=10, disk_reads=6)
        b = CacheMetrics(read_accesses=25, disk_reads=8)
        warm = b.delta(a)
        assert warm.read_accesses == 15
        assert warm.disk_reads == 2
        assert warm.miss_ratio == pytest.approx(2 / 15)

    def test_snapshot_is_independent_copy(self):
        a = CacheMetrics(read_accesses=1)
        snap = a.snapshot()
        a.read_accesses = 99
        assert snap.read_accesses == 1

    def test_checkpoint_taken_at_time(self, small_trace):
        stream = build_stream(small_trace)
        sim = BlockCacheSimulator(1024 * 1024)
        total = sim.run(stream, checkpoint_time=300.0)
        assert sim.checkpoint is not None
        warm = total.delta(sim.checkpoint)
        assert warm.block_accesses < total.block_accesses
        assert warm.block_accesses > 0

    def test_warm_read_misses_not_worse_than_cold_phase(self, medium_trace):
        # Note: the *total* miss ratio can legitimately rise in the warm
        # phase under delayed-write (writebacks only begin once the cache
        # fills); the cold-start effect proper shows in the read misses.
        stream = build_stream(medium_trace)
        sim = BlockCacheSimulator(4 * 1024 * 1024)
        total = sim.run(stream, checkpoint_time=1800.0)
        cold = sim.checkpoint
        warm = total.delta(cold)
        cold_read_miss = cold.disk_reads / max(1, cold.read_accesses)
        warm_read_miss = warm.disk_reads / max(1, warm.read_accesses)
        assert warm_read_miss <= cold_read_miss + 0.02

    def test_no_checkpoint_without_request(self, small_trace):
        sim = BlockCacheSimulator(1024 * 1024)
        sim.run(build_stream(small_trace))
        assert sim.checkpoint is None
