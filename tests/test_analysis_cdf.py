"""Tests for the weighted/censored CDF utility."""

import pytest

from repro.analysis.cdf import Cdf


class TestUnweighted:
    def test_fraction_at_or_below(self):
        cdf = Cdf.from_samples([1, 2, 2, 10])
        assert cdf.fraction_at_or_below(0) == 0.0
        assert cdf.fraction_at_or_below(1) == pytest.approx(0.25)
        assert cdf.fraction_at_or_below(2) == pytest.approx(0.75)
        assert cdf.fraction_at_or_below(9.99) == pytest.approx(0.75)
        assert cdf.fraction_at_or_below(10) == 1.0

    def test_percentile(self):
        cdf = Cdf.from_samples([1, 2, 3, 4])
        assert cdf.percentile(0.25) == 1
        assert cdf.percentile(0.5) == 2
        assert cdf.percentile(1.0) == 4

    def test_median(self):
        assert Cdf.from_samples([5, 1, 9]).median() == 5

    def test_empty(self):
        cdf = Cdf.from_samples([])
        assert cdf.fraction_at_or_below(100) == 0.0
        assert cdf.percentile(0.5) == float("inf")

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([1]).percentile(1.5)


class TestWeighted:
    def test_weights_shift_mass(self):
        cdf = Cdf.from_samples([1, 100], weights=[1, 9])
        assert cdf.fraction_at_or_below(1) == pytest.approx(0.1)

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([1, 2], weights=[1])

    def test_duplicate_values_merge_weights(self):
        cdf = Cdf.from_samples([1, 1], weights=[2, 3])
        assert cdf.count == 5
        assert cdf.fraction_at_or_below(1) == 1.0


class TestCensored:
    def test_censored_mass_in_denominator(self):
        cdf = Cdf.from_samples([10, 20], censored_weight=2)
        assert cdf.count == 4
        assert cdf.fraction_at_or_below(20) == pytest.approx(0.5)

    def test_percentile_in_censored_tail_is_inf(self):
        cdf = Cdf.from_samples([10], censored_weight=9)
        assert cdf.percentile(0.9) == float("inf")


class TestEvaluate:
    def test_curve_monotone(self):
        cdf = Cdf.from_samples([3, 1, 4, 1, 5, 9, 2, 6])
        curve = cdf.evaluate([0, 1, 2, 5, 10])
        fracs = [f for _x, f in curve]
        assert fracs == sorted(fracs)
        assert fracs[-1] == 1.0
