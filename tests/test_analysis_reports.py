"""Tests for the analysis report modules: activity (Table IV),
sequentiality (Table V / Fig 1), sizes (Fig 2), open times (Fig 3) and
lifetimes (Fig 4)."""

import pytest

from repro.analysis.activity import analyze_activity
from repro.analysis.lifetimes import (
    collect_lifetimes,
    daemon_spike_fraction,
    lifetime_cdfs,
)
from repro.analysis.opentimes import open_time_cdf, open_time_summary
from repro.analysis.report import format_bytes, render_table
from repro.analysis.sequentiality import analyze_sequentiality, run_length_cdfs
from repro.analysis.sizes import file_size_cdfs, size_summary
from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
    UnlinkEvent,
)


def _open(t, oid, fid=None, uid=1, size=0, mode=AccessMode.READ, created=False,
          new_file=False, pos=0):
    return OpenEvent(time=t, open_id=oid, file_id=fid if fid is not None else oid,
                     user_id=uid, size=size, mode=mode, created=created,
                     new_file=new_file, initial_pos=pos)


class TestActivity:
    def test_two_users_one_window(self):
        log = TraceLog.from_events([
            _open(0.0, 1, uid=1, size=1000),
            CloseEvent(time=1.0, open_id=1, final_pos=1000),
            _open(2.0, 2, uid=2, size=500),
            CloseEvent(time=3.0, open_id=2, final_pos=500),
        ])
        report = analyze_activity(log, long_window=600, short_window=10)
        assert report.total_users == 2
        assert report.total_bytes == 1500
        assert report.ten_minute.max_active_users == 2

    def test_user_active_without_bytes_counts_as_active(self):
        log = TraceLog.from_events([
            _open(0.0, 1, uid=1, size=100),
            CloseEvent(time=0.5, open_id=1, final_pos=0),  # no data moved
        ])
        report = analyze_activity(log)
        assert report.ten_minute.mean_active_users == pytest.approx(1.0)
        assert report.ten_minute.mean_user_throughput == pytest.approx(0.0)

    def test_bytes_billed_in_closing_window(self):
        # Open in window 0, close (and bill) in window 1.
        log = TraceLog.from_events([
            _open(0.0, 1, uid=1, size=10_000),
            CloseEvent(time=15.0, open_id=1, final_pos=10_000),
        ])
        report = analyze_activity(log, long_window=600, short_window=10)
        w = report.ten_second
        # Two 10-second intervals; all bytes land in the second.
        assert w.intervals == 2
        assert w.mean_user_throughput == pytest.approx(
            (0 + 10_000 / 10.0) / 2
        )

    def test_render_mentions_throughput(self, small_trace):
        assert "throughput per active user" in analyze_activity(small_trace).render()


class TestSequentiality:
    def test_classification_by_mode(self):
        log = TraceLog.from_events([
            # whole-file read
            _open(0.0, 1, size=100),
            CloseEvent(time=0.1, open_id=1, final_pos=100),
            # non-sequential read
            _open(1.0, 2, size=10_000),
            SeekEvent(time=1.1, open_id=2, prev_pos=500, new_pos=5000),
            CloseEvent(time=1.2, open_id=2, final_pos=5500),
            # whole-file write
            _open(2.0, 3, size=0, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=2.1, open_id=3, final_pos=300),
            # read-write access
            _open(3.0, 4, size=1000, mode=AccessMode.READ_WRITE),
            CloseEvent(time=3.1, open_id=4, final_pos=1000),
        ])
        report = analyze_sequentiality(log)
        assert report.read.accesses == 2
        assert report.read.whole_file == 1
        assert report.read.sequential == 1
        assert report.write.whole_file == 1
        assert report.read_write.accesses == 1
        assert report.read_write.sequential == 1

    def test_byte_totals(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=100),
            CloseEvent(time=0.1, open_id=1, final_pos=100),
            _open(1.0, 2, size=10_000),
            SeekEvent(time=1.1, open_id=2, prev_pos=500, new_pos=5000),
            CloseEvent(time=1.2, open_id=2, final_pos=5500),
        ])
        report = analyze_sequentiality(log)
        assert report.total_bytes == 100 + 1000
        assert report.bytes_whole_file == 100
        assert report.percent_bytes_whole_file == pytest.approx(100 * 100 / 1100)

    def test_run_length_cdfs_weighting(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=100),
            CloseEvent(time=0.1, open_id=1, final_pos=100),       # run of 100
            _open(1.0, 2, size=9900),
            CloseEvent(time=1.1, open_id=2, final_pos=9900),      # run of 9900
        ])
        by_runs, by_bytes = run_length_cdfs(log)
        assert by_runs.fraction_at_or_below(100) == pytest.approx(0.5)
        assert by_bytes.fraction_at_or_below(100) == pytest.approx(0.01)


class TestSizes:
    def test_size_at_close_weighting(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=1000),
            CloseEvent(time=0.1, open_id=1, final_pos=1000),
            _open(1.0, 2, size=0, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=1.1, open_id=2, final_pos=99_000),
        ])
        by_acc, by_bytes = file_size_cdfs(log)
        assert by_acc.fraction_at_or_below(1000) == pytest.approx(0.5)
        assert by_bytes.fraction_at_or_below(1000) == pytest.approx(0.01)

    def test_summary_text(self, small_trace):
        text = size_summary(*file_size_cdfs(small_trace))
        assert "file accesses" in text


class TestOpenTimes:
    def test_durations(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=10),
            CloseEvent(time=0.2, open_id=1, final_pos=10),
            _open(1.0, 2, size=10),
            CloseEvent(time=21.0, open_id=2, final_pos=10),
        ])
        cdf = open_time_cdf(log)
        assert cdf.fraction_at_or_below(0.5) == pytest.approx(0.5)
        assert cdf.fraction_at_or_below(30.0) == 1.0

    def test_summary(self, small_trace):
        assert "open less than 0.5 second" in open_time_summary(
            open_time_cdf(small_trace)
        )


class TestLifetimes:
    def test_unlink_death(self):
        log = TraceLog.from_events([
            _open(0.0, 1, fid=7, mode=AccessMode.WRITE, created=True, new_file=True),
            CloseEvent(time=1.0, open_id=1, final_pos=500),
            UnlinkEvent(time=61.0, file_id=7),
        ])
        (lt,) = collect_lifetimes(log)
        assert lt.lifetime == pytest.approx(60.0)
        assert lt.bytes_written == 500

    def test_overwrite_death_at_next_truncating_open(self):
        log = TraceLog.from_events([
            _open(0.0, 1, fid=7, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=1.0, open_id=1, final_pos=500),
            _open(181.0, 2, fid=7, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=182.0, open_id=2, final_pos=700),
        ])
        lifetimes = collect_lifetimes(log)
        assert len(lifetimes) == 2
        first = next(lt for lt in lifetimes if lt.birth_time == 1.0)
        assert first.lifetime == pytest.approx(180.0)
        second = next(lt for lt in lifetimes if lt.birth_time == 182.0)
        assert second.lifetime is None  # censored

    def test_truncate_to_zero_is_death(self):
        log = TraceLog.from_events([
            _open(0.0, 1, fid=7, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=1.0, open_id=1, final_pos=500),
            TruncateEvent(time=31.0, file_id=7, new_length=0),
        ])
        (lt,) = collect_lifetimes(log)
        assert lt.lifetime == pytest.approx(30.0)

    def test_partial_truncate_not_a_death(self):
        log = TraceLog.from_events([
            _open(0.0, 1, fid=7, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=1.0, open_id=1, final_pos=500),
            TruncateEvent(time=31.0, file_id=7, new_length=100),
        ])
        (lt,) = collect_lifetimes(log)
        assert lt.lifetime is None

    def test_non_created_open_is_not_a_birth(self):
        log = TraceLog.from_events([
            _open(0.0, 1, fid=7, size=100, mode=AccessMode.WRITE),
            CloseEvent(time=1.0, open_id=1, final_pos=200),
            UnlinkEvent(time=5.0, file_id=7),
        ])
        assert collect_lifetimes(log) == []

    def test_cdfs_respect_censoring(self):
        log = TraceLog.from_events([
            _open(0.0, 1, fid=7, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=1.0, open_id=1, final_pos=100),
            _open(2.0, 2, fid=8, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=3.0, open_id=2, final_pos=300),
            UnlinkEvent(time=11.0, file_id=7),
        ])
        by_files, by_bytes = lifetime_cdfs(log)
        assert by_files.count == 2
        assert by_files.fraction_at_or_below(100) == pytest.approx(0.5)
        assert by_bytes.fraction_at_or_below(100) == pytest.approx(0.25)

    def test_daemon_spike_fraction(self):
        log = TraceLog.from_events([
            _open(0.0, 1, fid=7, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=1.0, open_id=1, final_pos=100),
            _open(181.0, 2, fid=7, mode=AccessMode.WRITE, created=True),
            CloseEvent(time=181.5, open_id=2, final_pos=100),
        ])
        lifetimes = collect_lifetimes(log)
        assert daemon_spike_fraction(lifetimes) == pytest.approx(0.5)


class TestRenderHelpers:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(4096) == "4.0 KB"
        assert format_bytes(4 * 1024 * 1024) == "4.0 MB"

    def test_render_table_alignment(self):
        text = render_table(("a", "b"), [("row", "1"), ("longer-row", "22")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[2].endswith(" 1")
