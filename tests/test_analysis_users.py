"""Tests for the per-user analysis."""

import pytest

from repro.analysis.users import per_user_summary, render_user_table
from repro.trace.log import TraceLog
from repro.trace.records import AccessMode, CloseEvent, ExecEvent, OpenEvent


def _trace():
    return TraceLog.from_events([
        OpenEvent(time=0.0, open_id=1, file_id=10, user_id=1, size=1000,
                  mode=AccessMode.READ),
        CloseEvent(time=1.0, open_id=1, final_pos=1000),
        OpenEvent(time=2.0, open_id=2, file_id=11, user_id=1, size=0,
                  mode=AccessMode.WRITE, created=True),
        CloseEvent(time=3.0, open_id=2, final_pos=500),
        ExecEvent(time=4.0, file_id=12, user_id=2, size=4096),
        OpenEvent(time=5.0, open_id=3, file_id=10, user_id=2, size=1000,
                  mode=AccessMode.READ),
        CloseEvent(time=6.0, open_id=3, final_pos=200),
    ])


def test_bytes_split_by_direction():
    users = per_user_summary(_trace())
    assert users[1].bytes_read == 1000
    assert users[1].bytes_written == 500
    assert users[2].bytes_read == 200
    assert users[2].bytes_written == 0


def test_counts_and_files():
    users = per_user_summary(_trace())
    assert users[1].opens == 2
    assert users[1].files_touched == {10, 11}
    assert users[2].execs == 1


def test_span():
    users = per_user_summary(_trace())
    assert users[1].span == pytest.approx(3.0)
    assert users[2].span == pytest.approx(2.0)


def test_render_ranks_by_bytes():
    text = render_user_table(per_user_summary(_trace()))
    lines = text.splitlines()
    # user 1 moved more bytes, so appears first in the body.
    assert lines[3].startswith("u1")


def test_generated_trace_users_plausible(small_trace):
    users = per_user_summary(small_trace)
    # Every simulated user should look like a person: a handful of opens,
    # not millions, and no single user dominating everything.
    totals = sorted((u.bytes_total for u in users.values()), reverse=True)
    assert len(users) >= 10
    assert totals[0] < 0.8 * sum(totals)


class TestComparison:
    def test_headline_fields(self, small_trace):
        from repro.analysis.comparison import headline

        h = headline(small_trace)
        assert h.name == small_trace.name
        assert h.events == len(small_trace)
        assert 0 <= h.miss_ratio_4mb <= 1
        assert 0 <= h.whole_file_read_pct <= 100

    def test_compare_traces_renders_one_row_per_trace(self, small_trace):
        from repro.analysis.comparison import compare_traces

        sliced = small_trace.slice(0, 600, name="half")
        text = compare_traces([small_trace, sliced])
        assert "A5" in text
        assert "half" in text
        assert text.count("\n") >= 4
