"""Tests for the Section 8 metadata-traffic model."""

import pytest

from repro.cache.metadata import (
    DIRECTORY_FILE_ID_BASE,
    INODE_TABLE_FILE_ID,
    build_stream_with_metadata,
    is_metadata_item,
    metadata_stream,
)
from repro.cache.simulator import BlockCacheSimulator
from repro.cache.stream import build_stream
from repro.trace.log import TraceLog
from repro.trace.records import AccessMode, CloseEvent, OpenEvent


def _trace(mode=AccessMode.READ, file_id=5):
    return TraceLog.from_events([
        OpenEvent(time=0.0, open_id=1, file_id=file_id, user_id=1, size=1000,
                  mode=mode),
        CloseEvent(time=1.0, open_id=1, final_pos=1000),
    ])


class TestMetadataStream:
    def test_read_open_implies_inode_and_directory_reads(self):
        items = metadata_stream(_trace())
        assert len(items) == 2
        inode, directory = items
        assert inode.file_id == INODE_TABLE_FILE_ID
        assert inode.start == 128 * 5
        assert inode.length == 128
        assert not inode.is_write
        assert directory.file_id == DIRECTORY_FILE_ID_BASE + 0
        assert not directory.is_write

    def test_writable_open_adds_inode_writeback_at_close(self):
        items = metadata_stream(_trace(mode=AccessMode.WRITE))
        assert len(items) == 3
        writeback = items[-1]
        assert writeback.is_write
        assert writeback.file_id == INODE_TABLE_FILE_ID
        assert writeback.time == 1.0

    def test_writeback_can_be_disabled(self):
        items = metadata_stream(_trace(mode=AccessMode.WRITE),
                                inode_writeback=False)
        assert len(items) == 2

    def test_nearby_files_share_directory(self):
        a = metadata_stream(_trace(file_id=10))
        b = metadata_stream(_trace(file_id=11))
        c = metadata_stream(_trace(file_id=10 + 64))
        assert a[1].file_id == b[1].file_id
        assert a[1].file_id != c[1].file_id

    def test_nearby_inodes_share_blocks_in_cache(self):
        # 32 inodes of 128 B fit one 4 KB block: opening neighbours after
        # the first should hit.
        events = []
        t = 0.0
        for i in range(8):
            events.append(OpenEvent(time=t, open_id=i, file_id=100 + i,
                                    user_id=1, size=0, mode=AccessMode.READ))
            events.append(CloseEvent(time=t + 0.1, open_id=i, final_pos=0))
            t += 1.0
        log = TraceLog.from_events(events)
        meta_only = metadata_stream(log)
        sim = BlockCacheSimulator(1024 * 1024)
        metrics = sim.run(meta_only)
        # 16 accesses (8 inode + 8 directory) but only 2 distinct blocks.
        assert metrics.block_accesses == 16
        assert metrics.disk_reads == 2

    def test_merged_stream_is_time_ordered(self, small_trace):
        merged = build_stream_with_metadata(small_trace)
        times = [item.time for item in merged]
        assert times == sorted(times)
        assert len(merged) > len(build_stream(small_trace))

    def test_is_metadata_item(self, small_trace):
        merged = build_stream_with_metadata(small_trace)
        kinds = {is_metadata_item(i) for i in merged}
        assert kinds == {True, False}


class TestSection8Claims:
    def test_metadata_is_large_share_of_references(self, medium_trace):
        plain = build_stream(medium_trace)
        full = build_stream_with_metadata(medium_trace)
        base = BlockCacheSimulator(4 * 1024 * 1024).run(plain)
        meta = BlockCacheSimulator(4 * 1024 * 1024).run(full)
        share = (meta.block_accesses - base.block_accesses) / meta.block_accesses
        # "more than half of all disk block references could come from
        # these other accesses" — a large share, at least.
        assert share > 0.3

    def test_metadata_caches_well(self, medium_trace):
        full = build_stream_with_metadata(medium_trace)
        plain = build_stream(medium_trace)
        with_meta = BlockCacheSimulator(4 * 1024 * 1024).run(full)
        without = BlockCacheSimulator(4 * 1024 * 1024).run(plain)
        # Adding highly-local metadata references lowers the miss ratio.
        assert with_meta.miss_ratio < without.miss_ratio


class TestExposure:
    def test_write_through_has_zero_exposure(self, small_trace):
        from repro.cache.policies import WRITE_THROUGH
        from repro.cache.stream import build_stream

        sim = BlockCacheSimulator(
            1024 * 1024, policy=WRITE_THROUGH, track_exposure=True
        )
        sim.run(build_stream(small_trace))
        assert sim.exposure.max_dirty_blocks == 0
        assert sim.exposure.average_dirty_blocks(small_trace.duration) == 0.0

    def test_exposure_ordering_by_policy(self, medium_trace):
        from repro.cache.policies import DELAYED_WRITE, FLUSH_30S, FLUSH_5MIN
        from repro.cache.stream import build_stream

        stream = build_stream(medium_trace)
        averages = {}
        for policy in (FLUSH_30S, FLUSH_5MIN, DELAYED_WRITE):
            sim = BlockCacheSimulator(
                4 * 1024 * 1024, policy=policy, track_exposure=True
            )
            sim.run(stream)
            averages[policy.label] = sim.exposure.average_dirty_blocks(
                medium_trace.duration
            )
        assert (
            averages["30 sec flush"]
            < averages["5 min flush"]
            < averages["delayed-write"]
        )

    def test_exposure_experiment_registered(self, small_trace):
        from repro.experiments import run_one

        result = run_one("exposure", small_trace)
        assert "write-through" in result.rendered
        assert result.data["avg_kb_write-through"] == 0.0
        assert result.data["avg_kb_delayed-write"] >= result.data["avg_kb_5_min_flush"]

    def test_integral_arithmetic(self):
        from repro.cache.metrics import ExposureTracker

        tracker = ExposureTracker()
        tracker.update(0.0, 0)
        tracker.update(10.0, 5)   # 0 dirty for 10 s
        tracker.update(20.0, 0)   # 5 dirty for 10 s
        assert tracker.average_dirty_blocks(20.0) == 2.5
        assert tracker.max_dirty_blocks == 5
