"""Tests for the block-cache simulator: hand-computed tiny scenarios."""

import pytest

from repro.analysis.accesses import Transfer
from repro.cache.metrics import ResidencyTracker
from repro.cache.policies import (
    DELAYED_WRITE,
    FLUSH_30S,
    PolicySpec,
    WRITE_THROUGH,
    WritePolicy,
)
from repro.cache.simulator import BlockCacheSimulator
from repro.cache.stream import Invalidation

BS = 4096


def read(t, fid, start, end):
    return Transfer(time=t, file_id=fid, user_id=1, start=start, end=end,
                    is_write=False)


def write(t, fid, start, end):
    return Transfer(time=t, file_id=fid, user_id=1, start=start, end=end,
                    is_write=True)


def sim(cache_blocks=8, policy=DELAYED_WRITE, **kw):
    return BlockCacheSimulator(
        cache_bytes=cache_blocks * BS, block_size=BS, policy=policy, **kw
    )


class TestReads:
    def test_cold_read_misses_then_hits(self):
        s = sim()
        m = s.run([read(0, 1, 0, BS), read(1, 1, 0, BS)])
        assert m.read_accesses == 2
        assert m.disk_reads == 1
        assert m.miss_ratio == pytest.approx(0.5)

    def test_range_split_into_block_accesses(self):
        s = sim()
        m = s.run([read(0, 1, 0, 3 * BS + 1)])
        assert m.read_accesses == 4
        assert m.disk_reads == 4

    def test_lru_eviction(self):
        s = sim(cache_blocks=2)
        m = s.run([
            read(0, 1, 0, BS),       # A miss
            read(1, 2, 0, BS),       # B miss
            read(2, 1, 0, BS),       # A hit (B now LRU)
            read(3, 3, 0, BS),       # C miss, evicts B
            read(4, 2, 0, BS),       # B miss again
        ])
        assert m.disk_reads == 4

    def test_fifo_replacement_differs(self):
        stream = [
            read(0, 1, 0, BS),
            read(1, 2, 0, BS),
            read(2, 1, 0, BS),   # hit, but does not refresh under FIFO
            read(3, 3, 0, BS),   # evicts 1 under FIFO (oldest inserted)
            read(4, 1, 0, BS),
        ]
        lru = sim(cache_blocks=2, replacement="lru").run(list(stream))
        fifo = sim(cache_blocks=2, replacement="fifo").run(list(stream))
        assert lru.disk_reads == 3
        assert fifo.disk_reads == 4


class TestWritePolicies:
    def test_write_through_pays_every_write(self):
        s = sim(policy=WRITE_THROUGH)
        m = s.run([write(0, 1, 0, BS), write(1, 1, 0, BS)])
        assert m.disk_writes == 2
        assert m.disk_reads == 0  # whole-block overwrite elision

    def test_delayed_write_defers_until_eviction(self):
        s = sim(cache_blocks=1, policy=DELAYED_WRITE)
        m = s.run([
            write(0, 1, 0, BS),   # dirty block A
            read(1, 2, 0, BS),    # evicts A -> writeback
        ])
        assert m.disk_writes == 1
        assert m.evictions == 1

    def test_delayed_write_never_writes_deleted_data(self):
        s = sim(policy=DELAYED_WRITE)
        m = s.run([
            write(0, 1, 0, 2 * BS),
            Invalidation(time=1.0, file_id=1, from_byte=0),
        ])
        assert m.disk_writes == 0
        assert m.dirty_blocks_discarded == 2
        assert m.invalidated_blocks == 2

    def test_flush_back_writes_at_interval(self):
        s = sim(policy=FLUSH_30S)
        m = s.run([
            write(0.0, 1, 0, BS),
            read(31.0, 2, 0, BS),   # crosses the 30 s boundary -> flush
            read(32.0, 3, 0, BS),
        ])
        assert m.disk_writes == 1

    def test_flush_back_data_dead_before_flush_never_written(self):
        s = sim(policy=FLUSH_30S)
        m = s.run([
            write(0.0, 1, 0, BS),
            Invalidation(time=5.0, file_id=1, from_byte=0),
            read(31.0, 2, 0, BS),
        ])
        assert m.disk_writes == 0

    def test_rewrite_in_cache_costs_nothing_under_delayed(self):
        s = sim(policy=DELAYED_WRITE)
        m = s.run([write(0, 1, 0, BS), write(1, 1, 0, BS), write(2, 1, 0, BS)])
        assert m.disk_ios == 0
        assert m.dirty_blocks_created == 1


class TestReadElision:
    def test_partial_overwrite_of_existing_data_reads_first(self):
        s = sim()
        m = s.run([
            read(0, 1, 0, 2 * BS),                  # file known 2 blocks
            Invalidation(time=1, file_id=2, from_byte=0),  # unrelated
            write(2, 1, 100, 200),                  # partial write, block 0 cached
        ])
        # block 0 still cached -> hit, no extra read.
        assert m.disk_reads == 2

    def test_partial_write_miss_on_known_data_costs_read(self):
        s = sim(cache_blocks=1)
        m = s.run([
            read(0, 1, 0, BS),       # learn the file has a block 0
            read(1, 2, 0, BS),       # evict it
            write(2, 1, 100, 200),   # partial write miss -> read-modify-write
        ])
        assert m.disk_reads == 3

    def test_write_beyond_known_eof_needs_no_read(self):
        s = sim()
        m = s.run([write(0, 1, 0, 100)])  # brand new file, partial block
        assert m.disk_reads == 0
        assert m.read_elisions == 1

    def test_whole_block_overwrite_elides_read(self):
        s = sim()
        m = s.run([
            read(0, 1, 0, BS),
            Invalidation(time=1, file_id=1, from_byte=0),
            write(2, 1, 0, BS),
        ])
        assert m.disk_reads == 1  # only the initial read

    def test_elision_can_be_disabled(self):
        s = sim(read_elision=False)
        m = s.run([write(0, 1, 0, BS)])
        assert m.disk_reads == 1
        assert m.read_elisions == 0


class TestInvalidation:
    def test_truncate_invalidates_only_tail_blocks(self):
        s = sim()
        m = s.run([
            write(0, 1, 0, 3 * BS),
            Invalidation(time=1, file_id=1, from_byte=BS),  # keep block 0
            read(2, 1, 0, BS),
        ])
        assert m.invalidated_blocks == 2
        # block 0 still cached: the read hits.
        assert m.disk_reads == 0

    def test_invalidation_can_be_disabled_for_ablation(self):
        s = sim(cache_blocks=1, invalidate_on_delete=False)
        m = s.run([
            write(0, 1, 0, BS),
            Invalidation(time=1, file_id=1, from_byte=0),
            read(2, 2, 0, BS),  # evicts the (still dirty) dead block
        ])
        assert m.disk_writes == 1  # pays the pointless writeback
        assert m.dirty_blocks_discarded == 0


class TestResidency:
    def test_residency_recorded_on_eviction(self):
        s = sim(cache_blocks=1, track_residency=True)
        s.run([read(0, 1, 0, BS), read(100, 2, 0, BS)])
        tracker = s.residency
        assert tracker.total_blocks == 2
        assert tracker.fraction_longer_than(50) == pytest.approx(0.5)

    def test_still_resident_blocks_counted(self):
        tracker = ResidencyTracker()
        tracker.record(10.0)
        tracker.finish([2000.0])
        assert tracker.fraction_longer_than(1200) == pytest.approx(0.5)


class TestValidation:
    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            BlockCacheSimulator(cache_bytes=4096, block_size=0)

    def test_cache_smaller_than_block_rejected(self):
        with pytest.raises(ValueError):
            BlockCacheSimulator(cache_bytes=100, block_size=4096)

    def test_unknown_replacement_rejected(self):
        with pytest.raises(ValueError):
            BlockCacheSimulator(cache_bytes=8192, replacement="rand")

    def test_flush_back_requires_interval(self):
        with pytest.raises(ValueError):
            PolicySpec(WritePolicy.FLUSH_BACK)
        with pytest.raises(ValueError):
            PolicySpec(WritePolicy.DELAYED_WRITE, flush_interval=30.0)

    def test_policy_labels(self):
        assert WRITE_THROUGH.label == "write-through"
        assert FLUSH_30S.label == "30 sec flush"
        assert PolicySpec(WritePolicy.FLUSH_BACK, 300.0).label == "5 min flush"
