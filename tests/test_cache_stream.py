"""Tests for the cache simulator's input stream builder."""

from repro.analysis.accesses import Transfer
from repro.cache.stream import Invalidation, build_stream
from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
    UnlinkEvent,
)


def _open(t, oid, fid=None, size=0, mode=AccessMode.READ, created=False, pos=0):
    return OpenEvent(time=t, open_id=oid, file_id=fid if fid is not None else oid,
                     user_id=1, size=size, mode=mode, created=created,
                     initial_pos=pos)


def test_whole_read_becomes_one_transfer():
    log = TraceLog.from_events([
        _open(0.0, 1, size=5000),
        CloseEvent(time=1.0, open_id=1, final_pos=5000),
    ])
    (item,) = build_stream(log)
    assert isinstance(item, Transfer)
    assert (item.start, item.end, item.is_write) == (0, 5000, False)
    assert item.time == 1.0


def test_seek_yields_two_transfers_in_order():
    log = TraceLog.from_events([
        _open(0.0, 1, size=100_000),
        SeekEvent(time=0.5, open_id=1, prev_pos=1000, new_pos=50_000),
        CloseEvent(time=1.0, open_id=1, final_pos=51_000),
    ])
    items = build_stream(log)
    assert [i.time for i in items] == [0.5, 1.0]
    assert (items[0].start, items[0].end) == (0, 1000)
    assert (items[1].start, items[1].end) == (50_000, 51_000)


def test_creating_open_emits_invalidation_before_its_data():
    log = TraceLog.from_events([
        _open(0.0, 1, fid=7, size=0, mode=AccessMode.WRITE, created=True),
        CloseEvent(time=0.0, open_id=1, final_pos=1000),  # same tick
    ])
    items = build_stream(log)
    assert isinstance(items[0], Invalidation)
    assert items[0].from_byte == 0
    assert isinstance(items[1], Transfer)


def test_unlink_and_truncate_become_invalidations():
    log = TraceLog.from_events([
        UnlinkEvent(time=1.0, file_id=3),
        TruncateEvent(time=2.0, file_id=4, new_length=8192),
    ])
    items = build_stream(log)
    assert items[0] == Invalidation(1.0, 3, 0)
    assert items[1] == Invalidation(2.0, 4, 8192)


def test_read_write_mode_marks_write():
    log = TraceLog.from_events([
        _open(0.0, 1, size=100, mode=AccessMode.READ_WRITE),
        CloseEvent(time=1.0, open_id=1, final_pos=60),
    ])
    (item,) = build_stream(log)
    assert item.is_write


def test_exec_ignored_without_paging_flag():
    log = TraceLog.from_events([ExecEvent(time=1.0, file_id=5, user_id=1, size=4096)])
    assert build_stream(log) == []


def test_exec_becomes_whole_file_read_with_paging():
    log = TraceLog.from_events([ExecEvent(time=1.0, file_id=5, user_id=1, size=4096)])
    (item,) = build_stream(log, include_paging=True)
    assert isinstance(item, Transfer)
    assert (item.start, item.end, item.is_write) == (0, 4096, False)


def test_zero_size_exec_skipped_with_paging():
    log = TraceLog.from_events([ExecEvent(time=1.0, file_id=5, user_id=1, size=0)])
    assert build_stream(log, include_paging=True) == []


def test_stream_is_time_sorted(small_trace):
    items = build_stream(small_trace)
    times = [i.time for i in items]
    assert times == sorted(times)


def test_zero_byte_runs_not_emitted():
    log = TraceLog.from_events([
        _open(0.0, 1, size=100),
        CloseEvent(time=1.0, open_id=1, final_pos=0),
    ])
    assert build_stream(log) == []
