"""Tests for the cache parameter sweeps (Tables VI/VII, Figure 7)."""

import pytest

from repro.cache.policies import DELAYED_WRITE, FLUSH_5MIN, WRITE_THROUGH
from repro.cache.stream import build_stream
from repro.cache.sweep import (
    block_size_sweep,
    cache_size_policy_sweep,
    count_block_accesses,
    paging_comparison,
)

SIZES = (256 * 1024, 1024 * 1024, 4 * 1024 * 1024)


@pytest.fixture(scope="module")
def policy_sweep(small_trace):
    return cache_size_policy_sweep(small_trace, cache_sizes=SIZES)


@pytest.fixture(scope="module")
def bs_sweep(small_trace):
    return block_size_sweep(
        small_trace,
        block_sizes=(1024, 4096, 16384),
        cache_sizes=(400 * 1024, 4 * 1024 * 1024),
    )


class TestPolicySweep:
    def test_all_cells_present(self, policy_sweep):
        assert len(policy_sweep.results) == len(SIZES) * 4

    def test_miss_ratio_decreases_with_cache_size(self, policy_sweep):
        for policy in policy_sweep.policies:
            ratios = [policy_sweep.miss_ratio(s, policy) for s in SIZES]
            assert ratios == sorted(ratios, reverse=True)

    def test_policy_ordering_at_every_size(self, policy_sweep):
        # Figure 5's vertical ordering: write-through worst, delayed best.
        for size in SIZES:
            wt = policy_sweep.miss_ratio(size, WRITE_THROUGH)
            f5 = policy_sweep.miss_ratio(size, FLUSH_5MIN)
            dw = policy_sweep.miss_ratio(size, DELAYED_WRITE)
            assert wt >= f5 >= dw

    def test_render_has_row_per_size(self, policy_sweep):
        text = policy_sweep.render()
        assert "write-through" in text
        assert text.count("\n") >= len(SIZES) + 1


class TestBlockSizeSweep:
    def test_no_cache_column_decreases_with_block_size(self, bs_sweep):
        counts = [bs_sweep.no_cache[bs] for bs in bs_sweep.block_sizes]
        assert counts == sorted(counts, reverse=True)

    def test_cached_ios_below_no_cache(self, bs_sweep):
        for bs in bs_sweep.block_sizes:
            for cache in bs_sweep.cache_sizes:
                assert bs_sweep.disk_ios(bs, cache) <= bs_sweep.no_cache[bs]

    def test_bigger_cache_never_worse(self, bs_sweep):
        small, big = bs_sweep.cache_sizes
        for bs in bs_sweep.block_sizes:
            assert bs_sweep.disk_ios(bs, big) <= bs_sweep.disk_ios(bs, small)

    def test_best_block_size_is_from_the_grid(self, bs_sweep):
        assert bs_sweep.best_block_size(400 * 1024) in bs_sweep.block_sizes

    def test_render(self, bs_sweep):
        assert "No Cache" in bs_sweep.render()


class TestCountBlockAccesses:
    def test_counts_blocks_spanned(self, small_trace):
        stream = build_stream(small_trace)
        at_4k = count_block_accesses(stream, 4096)
        at_1k = count_block_accesses(stream, 1024)
        assert at_1k > at_4k >= 1
        # Quadrupling the block size cannot shrink accesses by more than 4x.
        assert at_1k <= 4 * at_4k


class TestPagingComparison:
    def test_paging_adds_accesses(self, small_trace):
        comparison = paging_comparison(small_trace, cache_sizes=(1024 * 1024,))
        size = 1024 * 1024
        assert (
            comparison.simulated[size].block_accesses
            > comparison.ignored[size].block_accesses
        )

    def test_paging_helps_large_caches(self, medium_trace):
        sizes = (512 * 1024, 16 * 1024 * 1024)
        comparison = paging_comparison(medium_trace, cache_sizes=sizes)
        big = sizes[-1]
        # Program reads are highly local: with a big cache the miss ratio
        # with paging included is no worse than without (Figure 7's
        # crossover).
        assert (
            comparison.simulated[big].miss_ratio
            <= comparison.ignored[big].miss_ratio + 0.02
        )

    def test_render(self, small_trace):
        comparison = paging_comparison(small_trace, cache_sizes=(1024 * 1024,))
        assert "Page-in" in comparison.render()
