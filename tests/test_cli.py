"""End-to-end tests for the repro-fs command-line interface."""

import textwrap

import pytest

from repro.cli.main import main
from repro.trace.io_binary import read_binary
from repro.trace.io_text import read_text


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "a5.trace"
    rc = main(["generate", "--profile", "A5", "--hours", "0.2",
               "--seed", "3", "-o", str(path)])
    assert rc == 0
    return str(path)


class TestGenerate:
    def test_writes_readable_trace(self, trace_file):
        log = read_text(trace_file)
        assert len(log) > 100
        assert log.name == "A5"

    def test_binary_output_by_extension(self, tmp_path):
        out = tmp_path / "c4.btrace"
        rc = main(["generate", "--profile", "C4", "--hours", "0.1",
                   "--seed", "1", "-o", str(out)])
        assert rc == 0
        assert read_binary(str(out)).name == "C4"

    def test_spool_streams_to_binary(self, tmp_path, capsys):
        out = tmp_path / "a5.btrace"
        rc = main(["generate", "--profile", "A5", "--hours", "0.05",
                   "--seed", "2", "-o", str(out), "--spool",
                   "--spool-buffer", "256"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "events spooled" in printed
        assert "peak" in printed
        assert len(read_binary(str(out))) > 0

    def test_spool_output_matches_unspooled(self, tmp_path):
        spooled = tmp_path / "s.btrace"
        direct = tmp_path / "d.btrace"
        common = ["generate", "--profile", "A5", "--hours", "0.05",
                  "--seed", "2"]
        assert main([*common, "-o", str(spooled), "--spool"]) == 0
        assert main([*common, "-o", str(direct)]) == 0
        assert spooled.read_bytes() == direct.read_bytes()

    def test_spool_requires_btrace_output(self, tmp_path, capsys):
        rc = main(["generate", "--profile", "A5", "--hours", "0.05",
                   "-o", str(tmp_path / "a5.trace"), "--spool"])
        assert rc == 2
        assert ".btrace" in capsys.readouterr().err

    def test_multi_seed_generates_one_file_per_seed(self, tmp_path):
        out = tmp_path / "many.btrace"
        rc = main(["generate", "--profile", "A5", "--hours", "0.05",
                   "--seed", "10", "--seeds", "3", "--jobs", "2",
                   "-o", str(out)])
        assert rc == 0
        for seed in (10, 11, 12):
            path = tmp_path / f"many-s{seed}.btrace"
            assert path.exists(), path
            assert read_binary(str(path)).name == "A5"

    def test_multi_seed_seed_placeholder(self, tmp_path):
        template = tmp_path / "t{seed}.btrace"
        rc = main(["generate", "--profile", "A5", "--hours", "0.05",
                   "--seeds", "2", "--spool", "-o", str(template)])
        assert rc == 0
        assert (tmp_path / "t0.btrace").exists()
        assert (tmp_path / "t1.btrace").exists()


class TestReadOnlyCommands:
    def test_stats(self, trace_file, capsys):
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "Number of trace records" in out

    def test_validate_ok(self, trace_file, capsys):
        assert main(["validate", trace_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_bad_trace_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_text("close\t1.00\t99\t0\n")
        assert main(["validate", str(bad)]) == 1
        assert "unknown open_id" in capsys.readouterr().out

    def test_analyze_all(self, trace_file, capsys):
        assert main(["analyze", trace_file]) == 0
        out = capsys.readouterr().out
        assert "Sequentiality" in out
        assert "throughput" in out

    def test_analyze_single_report(self, trace_file, capsys):
        assert main(["analyze", trace_file, "--report", "lifetimes"]) == 0
        assert "new files" in capsys.readouterr().out

    def test_engine_unavailable_is_a_usage_error(
        self, trace_file, capsys, monkeypatch
    ):
        # Availability is checked at parse time, so asking for the numpy
        # engine without numpy exits 2 with a usage message, not a
        # traceback.
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        with pytest.raises(SystemExit) as exc:
            main(["analyze", trace_file, "--engine", "numpy"])
        assert exc.value.code == 2
        assert "numpy is unavailable" in capsys.readouterr().err


class TestSimulation:
    def test_simulate(self, trace_file, capsys):
        rc = main(["simulate", trace_file, "--cache-mb", "1",
                   "--policy", "delayed-write"])
        assert rc == 0
        assert "miss ratio" in capsys.readouterr().out

    def test_simulate_with_paging(self, trace_file, capsys):
        assert main(["simulate", trace_file, "--paging"]) == 0

    def test_sweep_policy(self, trace_file, capsys):
        assert main(["sweep", trace_file, "--kind", "policy"]) == 0
        assert "write-through" in capsys.readouterr().out

    def test_sweep_blocksize(self, trace_file, capsys):
        assert main(["sweep", trace_file, "--kind", "blocksize"]) == 0
        assert "No Cache" in capsys.readouterr().out


class TestExperiments:
    def test_single_experiment(self, trace_file, capsys):
        assert main(["experiment", trace_file, "--id", "table5"]) == 0
        assert "Sequentiality" in capsys.readouterr().out

    def test_missing_id_lists_options(self, trace_file, capsys):
        assert main(["experiment", trace_file]) == 2
        assert "table6" in capsys.readouterr().err


class TestConvertStrace:
    def test_convert(self, tmp_path, capsys):
        strace = tmp_path / "s.log"
        strace.write_text(textwrap.dedent("""\
            1 1.000000 openat(AT_FDCWD, "/etc/passwd", O_RDONLY) = 3
            1 1.100000 read(3, "x", 4096) = 1000
            1 1.200000 close(3) = 0
        """))
        out = tmp_path / "out.trace"
        rc = main(["convert-strace", str(strace), "-o", str(out)])
        assert rc == 0
        log = read_text(str(out))
        assert log.count("open") == 1
        assert log.count("close") == 1
