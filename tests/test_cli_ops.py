"""End-to-end tests for the trace-manipulation CLI commands."""

import pytest

from repro.cli.main import main
from repro.trace.io_text import read_text
from repro.trace.validate import validate


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cliops") / "base.trace"
    assert main(["generate", "--profile", "A5", "--hours", "0.15",
                 "--seed", "8", "-o", str(path)]) == 0
    return str(path)


class TestSlice:
    def test_slice_window(self, trace_file, tmp_path):
        out = tmp_path / "w.trace"
        assert main(["slice", trace_file, "--start", "100", "--end", "300",
                     "-o", str(out)]) == 0
        log = read_text(str(out))
        assert all(100 <= e.time < 300 for e in log)

    def test_slice_default_bounds_keep_everything(self, trace_file, tmp_path):
        out = tmp_path / "all.trace"
        assert main(["slice", trace_file, "-o", str(out)]) == 0
        assert len(read_text(str(out))) == len(read_text(trace_file))


class TestFilter:
    def test_filter_by_user(self, trace_file, tmp_path):
        base = read_text(trace_file)
        uid = sorted(base.user_ids())[0]
        out = tmp_path / "u.trace"
        assert main(["filter", trace_file, "--users", str(uid),
                     "-o", str(out)]) == 0
        filtered = read_text(str(out))
        assert filtered.user_ids() <= {uid}
        assert validate(filtered).ok

    def test_filter_by_file(self, trace_file, tmp_path):
        base = read_text(trace_file)
        fid = sorted(base.file_ids())[0]
        out = tmp_path / "f.trace"
        assert main(["filter", trace_file, "--files", str(fid),
                     "-o", str(out)]) == 0
        assert validate(read_text(str(out))).ok


class TestMerge:
    def test_merge_two_traces(self, trace_file, tmp_path):
        out = tmp_path / "m.trace"
        assert main(["merge", trace_file, trace_file, "-o", str(out)]) == 0
        merged = read_text(str(out))
        assert len(merged) == 2 * len(read_text(trace_file))
        assert validate(merged).ok


class TestSystemCommand:
    def test_system_all(self, capsys):
        assert main(["system", "--hours", "0.1", "--seed", "2", "--all"]) == 0
        out = capsys.readouterr().out
        assert "fsck: clean" in out
        assert "leffler" in out
        assert "other_io" in out

    def test_system_single(self, capsys):
        assert main(["system", "--hours", "0.1", "--id", "static_scan"]) == 0
        assert "Static scan" in capsys.readouterr().out


class TestReport:
    def test_report_written(self, trace_file, tmp_path):
        out = tmp_path / "report.md"
        assert main(["report", trace_file, "-o", str(out)]) == 0
        text = out.read_text()
        assert "## table6:" in text
        assert "**Paper:**" in text


class TestExport:
    def test_export_figures(self, trace_file, tmp_path):
        out = tmp_path / "figs"
        assert main(["export-figures", trace_file, "-d", str(out)]) == 0
        for fig in ("fig1", "fig2", "fig3", "fig4"):
            text = (out / f"{fig}.csv").read_text()
            lines = text.strip().splitlines()
            assert len(lines) > 5
            header = lines[0].split(",")
            assert len(header) >= 2

    def test_export_curves_monotone(self, trace_file, tmp_path):
        out = tmp_path / "figs2"
        main(["export-figures", trace_file, "-d", str(out)])
        lines = (out / "fig3.csv").read_text().strip().splitlines()[1:]
        fracs = [float(line.split(",")[1]) for line in lines]
        assert fracs == sorted(fracs)
        assert all(0.0 <= f <= 1.0 for f in fracs)

    def test_sweep_csv(self, trace_file, tmp_path):
        out = tmp_path / "sweep.csv"
        assert main(["sweep", trace_file, "--kind", "blocksize",
                     "--csv", str(out)]) == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0].startswith("block_size,no_cache")
        assert len(lines) == 7  # header + six block sizes


class TestTwoLevel:
    def test_twolevel_command(self, trace_file, capsys):
        assert main(["twolevel", trace_file, "--client-kb", "256",
                     "--server-mb", "8"]) == 0
        out = capsys.readouterr().out
        assert "client" in out and "server" in out
