"""Tests for the columnar trace store and its binary fast paths."""

import io

import pytest

from repro.trace.columns import (
    KIND_LABELS,
    KIND_OPEN,
    TraceColumns,
    cached_columns,
)
from repro.trace.io_binary import (
    BinaryTraceError,
    BinaryTraceWriter,
    TraceSpool,
    read_binary,
    read_binary_columns,
    write_binary,
    write_binary_columns,
)
from repro.trace.log import TraceLog
from repro.trace.records import AccessMode, OpenEvent

from .test_trace_io import sample_log


class TestColumnarView:
    def test_round_trips_every_event_kind(self):
        log = sample_log()
        cols = TraceColumns.from_log(log)
        assert len(cols) == len(log.events)
        back = cols.to_log()
        assert back.events == log.events
        assert back.name == log.name
        assert back.description == log.description

    def test_lazy_events_match_eager(self, small_trace):
        cols = TraceColumns.from_log(small_trace)
        assert cols.event(0) == small_trace.events[0]
        assert cols.event(len(cols) - 1) == small_trace.events[-1]
        assert list(cols) == small_trace.events

    def test_times_are_exact_floats(self, small_trace):
        cols = TraceColumns.from_log(small_trace)
        assert [e.time for e in small_trace.events] == list(cols.times)

    def test_derived_properties_match_log(self, small_trace):
        cols = TraceColumns.from_log(small_trace)
        assert cols.start_time == small_trace.start_time
        assert cols.end_time == small_trace.end_time
        assert cols.duration == small_trace.duration

    def test_kind_counts(self):
        cols = TraceColumns.from_log(sample_log())
        for label in KIND_LABELS.values():
            expected = sum(1 for e in sample_log().events if e.kind == label)
            assert cols.count(label) == expected
        assert cols.count("no-such-kind") == 0

    def test_empty_log(self):
        cols = TraceColumns.from_log(TraceLog(name="empty"))
        assert len(cols) == 0
        assert cols.start_time == 0.0
        assert cols.duration == 0.0
        assert cols.to_log().events == []

    def test_open_flags_preserved(self):
        for created in (False, True):
            for new_file in (False, True):
                for mode in AccessMode:
                    event = OpenEvent(time=1.0, open_id=1, file_id=2,
                                      user_id=3, size=10, mode=mode,
                                      created=created, new_file=new_file,
                                      initial_pos=4)
                    cols = TraceColumns.from_log(
                        TraceLog(name="t", events=[event])
                    )
                    assert cols.event(0) == event

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            TraceColumns(kinds=bytes([KIND_OPEN]))

    def test_columns_much_smaller_than_objects(self, small_trace):
        cols = TraceColumns.from_log(small_trace)
        # ~49 bytes/row of column data vs hundreds per event object.
        assert cols.nbytes() < 64 * len(cols)

    def test_cached_columns_memoized(self, small_trace):
        assert cached_columns(small_trace) is cached_columns(small_trace)


class TestColumnarBinaryIO:
    def test_write_bytes_identical_to_event_writer(self, small_trace):
        via_events = io.BytesIO()
        write_binary(small_trace, via_events)
        via_columns = io.BytesIO()
        n = write_binary_columns(TraceColumns.from_log(small_trace), via_columns)
        assert via_columns.getvalue() == via_events.getvalue()
        assert n == len(via_events.getvalue())

    def test_read_columns_matches_event_reader(self, small_trace):
        buf = io.BytesIO()
        write_binary(small_trace, buf)
        data = buf.getvalue()
        cols = read_binary_columns(io.BytesIO(data))
        log = read_binary(io.BytesIO(data))
        assert cols.to_log().events == log.events
        assert cols.name == log.name
        assert cols.description == log.description

    def test_columns_file_round_trip(self, tmp_path):
        path = tmp_path / "t.btrace"
        cols = TraceColumns.from_log(sample_log())
        write_binary_columns(cols, str(path))
        loaded = read_binary_columns(str(path))
        assert loaded.kinds == cols.kinds
        assert loaded.to_log().events == read_binary(str(path)).events

    def test_bad_magic_rejected(self):
        with pytest.raises(BinaryTraceError, match="magic"):
            read_binary_columns(io.BytesIO(b"NOTATRACEFILE ..."))

    def test_truncated_payload_rejected(self):
        buf = io.BytesIO()
        write_binary(sample_log(), buf)
        data = buf.getvalue()
        with pytest.raises(BinaryTraceError, match="truncated"):
            read_binary_columns(io.BytesIO(data[:-3]))


class TestBinaryTraceWriter:
    def test_incremental_matches_one_shot(self, small_trace):
        one_shot = io.BytesIO()
        write_binary(small_trace, one_shot)
        incremental = io.BytesIO()
        with BinaryTraceWriter(incremental, name=small_trace.name,
                               description=small_trace.description) as writer:
            for event in small_trace.events:
                writer.write(event)
        assert writer.events_written == len(small_trace.events)
        assert incremental.getvalue() == one_shot.getvalue()

    def test_count_patched_at_close(self, tmp_path):
        path = tmp_path / "t.btrace"
        writer = BinaryTraceWriter(str(path), name="t")
        for event in sample_log().events:
            writer.write(event)
        writer.close()
        assert len(read_binary(str(path))) == len(sample_log().events)

    def test_write_after_close_rejected(self, tmp_path):
        writer = BinaryTraceWriter(str(tmp_path / "t.btrace"))
        writer.close()
        with pytest.raises(BinaryTraceError, match="closed"):
            writer.write(sample_log().events[0])

    def test_unseekable_destination_rejected(self):
        class NoSeek(io.RawIOBase):
            def writable(self):
                return True

            def seekable(self):
                return False

        with pytest.raises(BinaryTraceError, match="seekable"):
            BinaryTraceWriter(NoSeek())

    def test_empty_file_valid(self, tmp_path):
        path = tmp_path / "t.btrace"
        BinaryTraceWriter(str(path), name="nothing").close()
        assert len(read_binary(str(path))) == 0


class TestTraceSpool:
    def test_bounded_buffer_and_identical_file(self, tmp_path, small_trace):
        path = tmp_path / "spooled.btrace"
        spool = TraceSpool(str(path), name=small_trace.name,
                           description=small_trace.description,
                           buffer_events=100)
        for event in small_trace.events:
            spool.append(event)
        spool.close()
        assert spool.peak_buffered <= 100
        assert spool.events_spooled == len(small_trace.events)
        assert len(spool) == len(small_trace.events)
        reference = io.BytesIO()
        write_binary(small_trace, reference)
        assert path.read_bytes() == reference.getvalue()

    def test_out_of_order_append_rejected(self, tmp_path):
        spool = TraceSpool(str(tmp_path / "t.btrace"))
        spool.append(sample_log().events[-1])
        with pytest.raises(ValueError, match="time order"):
            spool.append(sample_log().events[0])

    def test_late_name_and_description_reach_header(self, tmp_path):
        # The generator constructs its tracer first and assigns the
        # description afterwards; the lazy writer must honor that.
        path = tmp_path / "t.btrace"
        spool = TraceSpool(str(path), buffer_events=4)
        spool.name = "late-name"
        spool.description = "late description"
        for event in sample_log().events:
            spool.append(event)
        spool.close()
        loaded = read_binary(str(path))
        assert loaded.name == "late-name"
        assert loaded.description == "late description"

    def test_append_after_close_rejected(self, tmp_path):
        spool = TraceSpool(str(tmp_path / "t.btrace"))
        spool.close()
        with pytest.raises(BinaryTraceError, match="closed"):
            spool.append(sample_log().events[0])

    def test_empty_spool_is_valid_trace(self, tmp_path):
        path = tmp_path / "t.btrace"
        with TraceSpool(str(path), name="empty"):
            pass
        assert len(read_binary(str(path))) == 0

    def test_bad_buffer_size_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="buffer_events"):
            TraceSpool(str(tmp_path / "t.btrace"), buffer_events=0)

    def test_events_list_quacks_like_tracelog(self, tmp_path):
        spool = TraceSpool(str(tmp_path / "t.btrace"), buffer_events=1000)
        spool.extend(sample_log().events)
        assert spool.events == sample_log().events
        spool.close()
        assert spool.events == []
