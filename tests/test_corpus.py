"""Tests for repro.corpus — the out-of-core sharded trace container.

Coverage map:

* format: schema digest registration, stat record round trip, padding;
* writer/reader: bit-exact round trips across segment-boundary sizes,
  unicode metadata, empty corpora, zero-copy views, verification;
* diagnostics: every corruption is a :class:`CorpusError` naming a byte
  offset — never a bare ``struct.error`` / ``IndexError``;
* streaming: ``analyze_corpus`` / ``validate_corpus`` field-identical to
  the in-RAM references;
* parallel: ``map_segments`` deterministic across job counts;
* spool: the ``TraceSpool``-shaped sink contract;
* CLI: ``corpus pack/info/verify`` plus ``validate``/``analyze`` on
  ``.bcorpus`` inputs.
"""

from __future__ import annotations

import dataclasses
import io
import random
import struct
import zlib

import pytest

from repro.analysis.onepass import analyze_onepass
from repro.cli.main import main
from repro.corpus import (
    CorpusError,
    CorpusReader,
    CorpusSpool,
    CorpusWriter,
    FORMAT_VERSION,
    SCHEMA_DIGESTS,
    map_segments,
    pack_columns,
    pack_trace,
    read_corpus_columns,
    schema_digest,
    segment_kind_counts,
    validate_corpus,
    verify_segment_job,
)
from repro.corpus.format import (
    BYTES_PER_EVENT,
    COLUMN_LAYOUT,
    SEGMENT_REC,
    SegmentStat,
    TRAILER,
    pad_to_8,
)
from repro.corpus.stream import analyze_corpus
from repro.fuzz.gen import random_trace
from repro.trace.columns import TraceColumns
from repro.trace.io_binary import write_binary
from repro.trace.log import TraceLog
from repro.trace.records import CloseEvent, UnlinkEvent
from repro.trace.validate import validate_columns

SEG = 8  # tiny segments so small traces span many of them


def fuzz_log(seed: str, n: int = 100) -> TraceLog:
    return random_trace(random.Random(f"corpus-test:{seed}"), n)


def pack_bytes(log: TraceLog, segment_events: int = SEG) -> bytes:
    buf = io.BytesIO()
    pack_columns(TraceColumns.from_log(log), buf, segment_events=segment_events)
    return buf.getvalue()


# -- format -----------------------------------------------------------------


class TestFormat:
    def test_registered_digest_matches_source(self):
        assert SCHEMA_DIGESTS[FORMAT_VERSION] == schema_digest()

    def test_magics_carry_the_version(self):
        from repro.corpus.format import END_MAGIC, FOOTER_MAGIC, MAGIC

        for magic in (MAGIC, FOOTER_MAGIC, END_MAGIC):
            assert len(magic) == 8
            assert magic[-1] == FORMAT_VERSION

    def test_bytes_per_event_matches_layout(self):
        widths = {"d": 8, "q": 8, "B": 1}
        assert BYTES_PER_EVENT == sum(
            widths[code] for _name, code in COLUMN_LAYOUT
        )

    def test_pad_to_8(self):
        assert [pad_to_8(n) for n in range(9)] == [0, 7, 6, 5, 4, 3, 2, 1, 0]

    def test_segment_stat_pack_round_trip(self):
        stat = SegmentStat(
            offset=64, count=3, time_first=0.5, time_last=9.25,
            user_lo=0, user_hi=12, file_lo=-1, file_hi=99,
            crc32=0xDEADBEEF, flag_hist=tuple(range(16)),
        )
        packed = stat.pack()
        assert len(packed) == SEGMENT_REC.size == 200
        again = SegmentStat.unpack_from(packed, 0)
        assert again == stat
        assert again.data_bytes == 3 * BYTES_PER_EVENT


# -- write / read round trips -----------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize(
        "n", [1, SEG - 1, SEG, SEG + 1, 3 * SEG, 3 * SEG + 1]
    )
    def test_bit_exact_across_segment_boundaries(self, n):
        log = fuzz_log(f"boundary-{n}", n)
        cols = TraceColumns.from_log(log)
        with CorpusReader(pack_bytes(log)) as reader:
            expected_segments = -(-len(cols) // SEG)  # ceil
            assert reader.segment_count == expected_segments
            assert len(reader) == len(cols)
            back = reader.to_columns()
            assert back.kinds == cols.kinds
            assert back.flags == cols.flags
            for column in (
                "times", "open_ids", "file_ids", "user_ids", "sizes",
                "positions",
            ):
                assert list(getattr(back, column)) == list(
                    getattr(cols, column)
                )
            assert list(reader.iter_events()) == log.events

    def test_times_stored_exactly(self):
        # The corpus stores f64 times verbatim — unlike the centisecond
        # .btrace encoding there is no quantization to survive.
        log = TraceLog.from_events(
            [UnlinkEvent(time=0.1 + 0.2, file_id=1)], name="exact"
        )
        with CorpusReader(pack_bytes(log)) as reader:
            assert reader.segment(0).times[0] == 0.1 + 0.2
            assert reader.stats[0].time_first == 0.1 + 0.2

    def test_empty_corpus_round_trips(self):
        buf = io.BytesIO()
        with CorpusWriter(buf, name="empty", description="nothing"):
            pass
        with CorpusReader(buf.getvalue()) as reader:
            assert (reader.name, reader.description) == ("empty", "nothing")
            assert len(reader) == 0
            assert reader.segment_count == 0
            assert len(reader.to_columns()) == 0
            assert reader.verify() == 0

    def test_unicode_metadata_round_trips(self):
        log = fuzz_log("unicode", 5)
        buf = io.BytesIO()
        with CorpusWriter(buf, name="trace éé", description="☃") as w:
            w.extend(log.events)
        with CorpusReader(buf.getvalue()) as reader:
            assert reader.name == "trace éé"
            assert reader.description == "☃"

    def test_segments_are_8_aligned(self):
        log = fuzz_log("align", 3 * SEG + 1)
        with CorpusReader(pack_bytes(log)) as reader:
            for stat in reader.stats:
                assert stat.offset % 8 == 0

    def test_negative_segment_index(self):
        log = fuzz_log("negidx", 3 * SEG)
        with CorpusReader(pack_bytes(log)) as reader:
            count = reader.segment_count
            last = reader.segment(-1)
            assert list(last.times) == list(reader.segment(count - 1).times)
            with pytest.raises(IndexError, match="out of range"):
                reader.segment(count)

    def test_zero_copy_views_on_little_endian(self):
        log = fuzz_log("zerocopy", SEG)
        import sys

        with CorpusReader(pack_bytes(log)) as reader:
            cols = reader.segment(0)
            if sys.byteorder == "little":
                assert isinstance(cols.times, memoryview)
                assert cols.times.format == "d"
            # Views stay valid after close(): the buffer is released
            # lazily once the last view dies.
            reader.close()
            assert len(cols.times) == SEG

    def test_reader_from_path_uses_mmap(self, tmp_path):
        log = fuzz_log("mmap", 2 * SEG)
        path = tmp_path / "t.bcorpus"
        pack_columns(TraceColumns.from_log(log), path, segment_events=SEG)
        with CorpusReader(path) as reader:
            assert reader.path == str(path)
            assert list(reader.iter_events()) == log.events
            assert reader.verify() == reader.segment_count

    def test_pack_trace_from_btrace_streams(self, tmp_path):
        # .btrace quantizes times to centiseconds; pack from the decoded
        # stream must reproduce exactly what read_binary would see.
        from repro.fuzz.oracles import canonicalize_times
        from repro.trace.io_binary import read_binary

        log = canonicalize_times(fuzz_log("btrace", 2 * SEG + 3))
        src = tmp_path / "t.btrace"
        write_binary(log, str(src))
        dest = tmp_path / "t.bcorpus"
        writer = pack_trace(src, dest, segment_events=SEG)
        assert writer.events_written == len(log)
        decoded = read_binary(str(src))
        assert list(CorpusReader(dest).iter_events()) == decoded.events

    def test_pack_trace_from_log_and_columns(self, tmp_path):
        log = fuzz_log("packsrc", SEG + 2)
        a, b = tmp_path / "a.bcorpus", tmp_path / "b.bcorpus"
        pack_trace(log, a, segment_events=SEG)
        pack_trace(TraceColumns.from_log(log), b, segment_events=SEG)
        assert a.read_bytes() == b.read_bytes()

    def test_read_corpus_columns(self):
        log = fuzz_log("readcols", 2 * SEG)
        cols = read_corpus_columns(pack_bytes(log))
        assert cols.to_log().events == log.events

    def test_writer_rejects_use_after_close(self):
        writer = CorpusWriter(io.BytesIO(), segment_events=SEG)
        writer.close()
        with pytest.raises(CorpusError, match="closed"):
            writer.append(UnlinkEvent(time=1.0, file_id=1))

    def test_writer_rejects_unknown_event_type(self):
        with pytest.raises(CorpusError, match="cannot serialize"):
            CorpusWriter(io.BytesIO()).append(object())  # type: ignore[arg-type]

    def test_writer_rejects_bad_segment_size(self):
        with pytest.raises(ValueError, match="segment_events"):
            CorpusWriter(io.BytesIO(), segment_events=0)


# -- corruption diagnostics --------------------------------------------------


class TestDiagnostics:
    """Satellite: damaged corpora produce CorpusError naming byte offsets."""

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bcorpus"
        path.write_bytes(b"")
        with pytest.raises(CorpusError, match="empty file"):
            CorpusReader(path)

    def test_empty_buffer(self):
        with pytest.raises(CorpusError, match="bad magic at byte 0"):
            CorpusReader(b"")

    def test_bad_magic_names_offset(self):
        with pytest.raises(CorpusError, match="bad magic at byte 0"):
            CorpusReader(b"NOTACORP" + b"\x00" * 64)

    def test_shorter_than_trailer(self):
        data = pack_bytes(fuzz_log("short", SEG))
        with pytest.raises(CorpusError, match="shorter than"):
            CorpusReader(data[: TRAILER.size - 1])

    def test_truncation_names_trailer_offset(self):
        data = pack_bytes(fuzz_log("trunc", 2 * SEG))
        cut = len(data) - 5
        with pytest.raises(
            CorpusError, match=f"trailer at byte {cut - TRAILER.size}"
        ):
            CorpusReader(data[:cut])

    def test_footer_crc_mismatch_names_range(self):
        data = bytearray(pack_bytes(fuzz_log("fcrc", 2 * SEG)))
        footer_offset = struct.unpack_from("<Q", data, len(data) - TRAILER.size)[0]
        data[footer_offset + 12] ^= 0xFF
        with pytest.raises(CorpusError, match="footer checksum mismatch"):
            CorpusReader(bytes(data))

    def test_header_corruption_names_range(self):
        # Depending on the damaged byte this trips either the UTF-8
        # decode guard or the header crc; both must be CorpusError
        # diagnostics about the header, never a raw UnicodeDecodeError.
        data = bytearray(pack_bytes(fuzz_log("hcrc", SEG)))
        data[10] ^= 0xFF  # inside the trace-name bytes
        with pytest.raises(CorpusError, match="header"):
            CorpusReader(bytes(data))

    def test_segment_bit_flip_caught_by_verify(self):
        data = bytearray(pack_bytes(fuzz_log("segflip", 2 * SEG)))
        with CorpusReader(bytes(data)) as reader:
            at = reader.stats[1].offset + 3
        data[at] ^= 0x01
        with CorpusReader(bytes(data)) as reader:
            with pytest.raises(
                CorpusError, match="segment 1 checksum mismatch"
            ):
                reader.verify()

    def test_footer_lying_about_offsets(self):
        # Rebuild a trailer whose footer_offset points mid-file: the
        # reader must reject it, not misparse.
        data = pack_bytes(fuzz_log("lie", 2 * SEG))
        footer_offset, total, nseg, _crc, end = struct.unpack_from(
            "<QQII8s", data, len(data) - TRAILER.size
        )
        bogus_footer = data[footer_offset:-TRAILER.size]
        bad = (
            data[: len(data) - TRAILER.size]
            + struct.pack(
                "<QQII8s", footer_offset - 8, total, nseg,
                zlib.crc32(data[footer_offset - 8 : -TRAILER.size]), end,
            )
        )
        assert bogus_footer  # the fixture really has a footer
        with pytest.raises(CorpusError):
            CorpusReader(bad)

    def test_never_a_bare_struct_or_index_error(self):
        data = pack_bytes(fuzz_log("sweep", 2 * SEG))
        rng = random.Random("diag-sweep")
        for _ in range(64):
            cut = rng.randint(0, len(data) - 1)
            try:
                with CorpusReader(data[:cut]) as reader:
                    reader.verify()
                    reader.to_columns()
            except CorpusError:
                continue
            except Exception as exc:  # pragma: no cover - the regression
                pytest.fail(
                    f"truncation at byte {cut} leaked "
                    f"{type(exc).__name__}: {exc}"
                )
            pytest.fail(f"truncation at byte {cut} was accepted")


# -- streaming vs in-RAM ------------------------------------------------------


class TestStreaming:
    def test_analyze_corpus_bit_identical(self):
        log = fuzz_log("stream-analyze", 150)
        cols = TraceColumns.from_log(log)
        with CorpusReader(pack_bytes(log)) as reader:
            streamed = analyze_corpus(reader)
        in_ram = analyze_onepass(cols)
        for f in dataclasses.fields(in_ram):
            assert getattr(streamed, f.name) == getattr(in_ram, f.name), f.name

    def test_analyze_corpus_from_path(self, tmp_path):
        log = fuzz_log("stream-path", 60)
        path = tmp_path / "t.bcorpus"
        pack_columns(TraceColumns.from_log(log), path, segment_events=SEG)
        assert analyze_corpus(path).render() == analyze_onepass(log).render()

    def test_analyze_empty_corpus(self):
        buf = io.BytesIO()
        with CorpusWriter(buf):
            pass
        report = analyze_corpus(buf.getvalue())
        assert report.activity.total_bytes == 0
        assert report.users == {}

    def test_validate_corpus_matches_in_ram(self):
        log = fuzz_log("stream-validate", 150)
        cols = TraceColumns.from_log(log)
        with CorpusReader(pack_bytes(log)) as reader:
            streamed = validate_corpus(reader)
        in_ram = validate_columns(cols)
        assert streamed.problems == in_ram.problems
        assert streamed.event_count == in_ram.event_count
        assert streamed.open_count == in_ram.open_count
        assert streamed.unmatched_opens == in_ram.unmatched_opens

    def test_validate_problem_indices_are_global(self):
        # A close without a matching open in segment 2 must be reported
        # with its trace-wide event index, not its within-segment row.
        events = [
            UnlinkEvent(time=float(i), file_id=i + 1) for i in range(2 * SEG)
        ]
        events.append(CloseEvent(time=100.0, open_id=999, final_pos=0))
        log = TraceLog.from_events(events, name="global-idx")
        streamed = validate_corpus(pack_bytes(log))
        in_ram = validate_columns(TraceColumns.from_log(log))
        assert streamed.problems == in_ram.problems
        assert any(f"event {2 * SEG}" in p for p in streamed.problems)


# -- parallel-by-segment ------------------------------------------------------


class TestParallel:
    def test_map_segments_deterministic_across_job_counts(self, tmp_path):
        log = fuzz_log("par", 5 * SEG + 3)
        path = tmp_path / "t.bcorpus"
        pack_columns(TraceColumns.from_log(log), path, segment_events=SEG)
        serial = map_segments(segment_kind_counts, path, jobs=1)
        parallel = map_segments(segment_kind_counts, path, jobs=4)
        assert serial == parallel
        assert len(serial) == -(-len(log.events) // SEG)
        total = sum(sum(c.values()) for c in serial)
        assert total == len(log.events)

    def test_map_segments_subset(self, tmp_path):
        log = fuzz_log("par-subset", 4 * SEG)
        path = tmp_path / "t.bcorpus"
        pack_columns(TraceColumns.from_log(log), path, segment_events=SEG)
        subset = map_segments(segment_kind_counts, path, jobs=1, indices=[1, 3])
        full = map_segments(segment_kind_counts, path, jobs=1)
        assert subset == [full[1], full[3]]

    def test_verify_segment_job(self, tmp_path):
        log = fuzz_log("par-verify", 3 * SEG)
        path = tmp_path / "t.bcorpus"
        pack_columns(TraceColumns.from_log(log), path, segment_events=SEG)
        with CorpusReader(path) as reader:
            count = reader.segment_count
        assert map_segments(verify_segment_job, path, jobs=2) == ["ok"] * count


# -- spool --------------------------------------------------------------------


class TestSpool:
    def test_spool_bounded_buffer_and_round_trip(self):
        log = fuzz_log("spool", 4 * SEG + 1)
        buf = io.BytesIO()
        with CorpusSpool(buf, name=log.name, buffer_events=SEG) as spool:
            for event in log.events:
                spool.append(event)
            assert spool.peak_buffered <= SEG
        with CorpusReader(buf.getvalue()) as reader:
            assert list(reader.iter_events()) == log.events

    def test_spool_rejects_time_disorder(self):
        spool = CorpusSpool(io.BytesIO(), buffer_events=SEG)
        spool.append(UnlinkEvent(time=2.0, file_id=1))
        with pytest.raises(ValueError, match="time order"):
            spool.append(UnlinkEvent(time=1.0, file_id=2))

    def test_empty_spool_close_writes_valid_corpus(self):
        # Satellite regression: a synthesis that emits zero events must
        # still leave a readable (empty) corpus behind.
        buf = io.BytesIO()
        spool = CorpusSpool(buf, name="nothing", buffer_events=SEG)
        spool.close()
        with CorpusReader(buf.getvalue()) as reader:
            assert len(reader) == 0
            assert reader.name == "nothing"
        spool.close()  # idempotent
        with pytest.raises(CorpusError, match="closed"):
            spool.append(UnlinkEvent(time=0.0, file_id=1))

    def test_exactly_one_event_segments(self):
        log = fuzz_log("spool-one", 5)
        buf = io.BytesIO()
        with CorpusSpool(buf, buffer_events=1) as spool:
            spool.extend(log.events)
        with CorpusReader(buf.getvalue()) as reader:
            assert reader.segment_count == len(log.events)
            assert all(stat.count == 1 for stat in reader.stats)
            assert list(reader.iter_events()) == log.events


# -- CLI ----------------------------------------------------------------------


@pytest.fixture
def corpus_file(tmp_path):
    log = fuzz_log("cli", 3 * SEG + 2)
    path = tmp_path / "cli.bcorpus"
    pack_columns(TraceColumns.from_log(log), path, segment_events=SEG)
    return str(path), log


class TestCli:
    def test_corpus_pack_info_verify(self, tmp_path, capsys):
        from repro.fuzz.oracles import canonicalize_times

        log = canonicalize_times(fuzz_log("cli-pack", 2 * SEG))
        btrace = tmp_path / "in.btrace"
        write_binary(log, str(btrace))
        out = tmp_path / "out.bcorpus"
        assert main([
            "corpus", "pack", str(btrace), "-o", str(out),
            "--segment-events", str(SEG),
        ]) == 0
        printed = capsys.readouterr().out
        assert f"{len(log.events)} events" in printed
        assert "segment(s)" in printed

        assert main(["corpus", "info", str(out), "--segments"]) == 0
        printed = capsys.readouterr().out
        assert str(len(log.events)) in printed and "crc" in printed

        assert main(["corpus", "verify", str(out)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_corpus_pack_requires_bcorpus_suffix(self, tmp_path, capsys):
        rc = main(["corpus", "pack", "x.btrace", "-o", str(tmp_path / "y.bin")])
        assert rc == 2  # usage error, matching the other CLI guards
        assert ".bcorpus" in capsys.readouterr().err

    def test_corpus_verify_detects_damage(self, corpus_file, tmp_path, capsys):
        path, _log = corpus_file
        data = bytearray(open(path, "rb").read())
        with CorpusReader(path) as reader:
            data[reader.stats[0].offset] ^= 0x10
        bad = tmp_path / "bad.bcorpus"
        bad.write_bytes(bytes(data))
        assert main(["corpus", "verify", str(bad)]) == 1
        assert "corrupt" in capsys.readouterr().err

    def test_validate_accepts_bcorpus(self, corpus_file, capsys):
        path, _log = corpus_file
        assert main(["validate", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_analyze_accepts_bcorpus(self, corpus_file, capsys):
        path, log = corpus_file
        assert main(["analyze", path, "--report", "activity"]) == 0
        printed = capsys.readouterr().out
        assert str(len(log.events)) in printed

    def test_generate_spools_to_bcorpus(self, tmp_path, capsys):
        out = tmp_path / "gen.bcorpus"
        rc = main([
            "generate", "--profile", "A5", "--hours", "0.05",
            "--seed", "7", "-o", str(out), "--spool",
        ])
        assert rc == 0
        with CorpusReader(out) as reader:
            assert len(reader) > 0
            reader.verify()
