"""Edge-case tests across modules (error paths and rendering)."""

import pytest

from repro.analysis.cdf import Cdf
from repro.analysis.report import render_cdf_ascii, render_cdf_points, render_table
from repro.clock import Clock
from repro.trace.records import AccessMode
from repro.unixfs.errors import EEXIST, EISDIR, ENOENT
from repro.unixfs.filesystem import FileSystem, Whence
from repro.workload.engine import Engine


class TestRenderHelpers:
    def test_render_cdf_points_table(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0])
        text = render_cdf_points(cdf, [1.0, 2.0, 3.0], "value")
        assert "value" in text
        assert "100.0%" in text

    def test_render_cdf_ascii_bars_grow(self):
        cdf = Cdf.from_samples([1.0, 10.0])
        text = render_cdf_ascii(cdf, [1.0, 10.0], "x", width=10)
        lines = text.splitlines()[1:]
        assert lines[0].count("#") < lines[1].count("#")

    def test_custom_x_format(self):
        cdf = Cdf.from_samples([1024.0])
        text = render_cdf_points(
            cdf, [1024.0], "size", x_format=lambda x: f"{x / 1024:.0f}K"
        )
        assert "1K" in text

    def test_render_table_with_no_rows(self):
        text = render_table(("name", "count"), [], title="empty table")
        lines = text.splitlines()
        assert lines[0] == "empty table"
        assert "name" in lines[1] and "count" in lines[1]
        assert len(lines) == 3  # title, header, rule — no data rows

    def test_render_table_no_rows_no_title(self):
        text = render_table(("only",), [])
        assert text.splitlines()[0].strip() == "only"

    def test_single_point_cdf_ascii(self):
        cdf = Cdf.from_samples([5.0])
        text = render_cdf_ascii(cdf, [5.0], "x", width=10)
        lines = text.splitlines()
        assert len(lines) == 2  # header + the one grid row
        assert "100.0%" in lines[1]
        assert lines[1].count("#") == 10

    def test_single_point_cdf_points(self):
        cdf = Cdf.from_samples([5.0])
        text = render_cdf_points(cdf, [4.0, 5.0], "x")
        assert "0.0%" in text
        assert "100.0%" in text


class TestFileSystemEdges:
    def test_mkdir_where_file_exists(self, fs):
        fd = fs.creat("/x")
        fs.close(fd)
        with pytest.raises(EEXIST):
            fs.mkdir("/x")

    def test_open_directory_read_only_allowed(self, fs):
        fs.mkdir("/d")
        fd = fs.open("/d", AccessMode.READ)
        fs.close(fd)  # directories could be read as files in 4.2 BSD

    def test_rename_missing_source(self, fs):
        with pytest.raises(ENOENT):
            fs.rename("/nope", "/other")

    def test_rename_over_directory_fails(self, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        fs.mkdir("/d")
        with pytest.raises(EISDIR):
            fs.rename("/f", "/d")

    def test_rename_directory_moves_subtree(self, fs):
        fs.makedirs("/a/b")
        fd = fs.creat("/a/b/f")
        fs.close(fd)
        fs.rename("/a", "/z")
        assert fs.exists("/z/b/f")
        assert not fs.exists("/a")

    def test_seek_cur_and_end_on_empty_file(self, fs):
        fd = fs.creat("/f")
        assert fs.lseek(fd, 0, Whence.END) == 0
        assert fs.lseek(fd, 5, Whence.CUR) == 5
        fs.close(fd)

    def test_zero_length_write_is_noop(self, fs):
        fd = fs.creat("/f")
        assert fs.write(fd, b"") == 0
        assert fs.write(fd, 0) == 0
        fs.close(fd)
        assert fs.stat("/f").size == 0

    def test_negative_read_rejected(self, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        fd = fs.open("/f", AccessMode.READ)
        with pytest.raises(Exception):
            fs.read(fd, -1)
        fs.close(fd)

    def test_sync_returns_dirty_count(self, clock):
        fs = FileSystem(clock=clock, sync_interval=1e9)  # no auto-sync
        fd = fs.creat("/f")
        fs.write(fd, 3 * 4096)
        fs.close(fd)
        assert fs.sync() == 3


class TestEngineEdges:
    def test_process_exception_propagates(self):
        def bad():
            yield 1.0
            raise RuntimeError("boom")

        engine = Engine(Clock())
        engine.spawn(bad())
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(until=10.0)

    def test_run_twice_is_safe(self):
        clock = Clock()
        engine = Engine(clock)

        def proc():
            yield 1.0

        engine.spawn(proc())
        engine.run(until=5.0)
        engine.run(until=10.0)  # nothing pending: no-op
        assert clock.now() == 10.0

    def test_spawn_after_run_works(self):
        clock = Clock()
        engine = Engine(clock)
        engine.run(until=5.0)
        ticks = []

        def proc():
            ticks.append(clock.now())
            yield 1.0

        engine.spawn(proc())
        engine.run(until=10.0)
        assert ticks == [5.0]
