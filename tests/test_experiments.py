"""Tests for the experiment registry and the per-exhibit drivers."""

import pytest

from repro.experiments import REGISTRY, all_ids, get, paper_vs_measured, run_all, run_one

EXPECTED_IDS = {
    "table1", "table3", "table4", "table5", "table6", "table7",
    "fig1", "fig2", "fig3", "fig4", "fig7", "intervals", "residency",
    "burstiness", "metadata", "exposure", "netfs", "section7",
    "table6rev",
}


class TestRegistry:
    def test_every_paper_exhibit_registered(self):
        assert set(all_ids()) == EXPECTED_IDS

    def test_each_has_title_and_claim(self):
        for experiment in REGISTRY.values():
            assert experiment.title
            assert experiment.paper_claim

    def test_unknown_id_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="table6"):
            get("table99")


class TestRuns:
    @pytest.fixture(scope="class")
    def results(self, small_trace):
        return {r.experiment_id: r for r in run_all(small_trace)}

    def test_all_run(self, results):
        assert set(results) == EXPECTED_IDS

    def test_rendered_nonempty(self, results):
        for result in results.values():
            assert result.rendered.strip()

    def test_table1_data_keys(self, results):
        data = results["table1"].data
        assert 0 < data["eliminated_delayed_4mb"] <= 1
        assert data["best_block_small"] in (1024, 2048, 4096, 8192, 16384, 32768)

    def test_table4_active_users_positive(self, results):
        assert results["table4"].data["active_10min"] > 0

    def test_table5_percentages_in_range(self, results):
        data = results["table5"].data
        for key in ("whole_read_pct", "whole_write_pct", "seq_read_pct"):
            assert 0 <= data[key] <= 100

    def test_fig_curves_are_monotone(self, results):
        for fig in ("fig1", "fig2", "fig3", "fig4"):
            for key, value in results[fig].data.items():
                if key.startswith("curve"):
                    fracs = [f for _x, f in value]
                    assert fracs == sorted(fracs), (fig, key)

    def test_table6_policy_order(self, results):
        data = results["table6"].data
        assert data["wt_4mb"] >= data["delayed_4mb"] >= data["delayed_16mb"]

    def test_residency_fractions(self, results):
        data = results["residency"].data
        assert 0 <= data["resident_over_20min"] <= 1
        assert 0 <= data["dirty_discard_16mb"] <= 1

    def test_run_one_matches_run_all(self, small_trace, results):
        single = run_one("table5", small_trace)
        assert single.data == results["table5"].data

    def test_str_includes_id(self, results):
        assert "table3" in str(results["table3"])


def test_paper_vs_measured_covers_everything(small_trace):
    text = paper_vs_measured(small_trace)
    for eid in EXPECTED_IDS:
        assert f"## {eid}:" in text
    assert text.count("**Paper:**") == len(EXPECTED_IDS)
