"""Tests for the extension modules: the disk service-time model, the
two-level client/server cache, and the file-popularity analysis."""

import pytest

from repro.analysis.popularity import analyze_popularity
from repro.cache.metrics import CacheMetrics
from repro.cache.policies import DELAYED_WRITE, WRITE_THROUGH
from repro.cache.simulator import simulate_cache
from repro.cache.twolevel import simulate_two_level
from repro.disk.model import FUJITSU_EAGLE, DiskModel, DiskTimeEstimate
from repro.trace.log import TraceLog
from repro.trace.records import AccessMode, CloseEvent, OpenEvent


class TestDiskModel:
    def test_service_time_components(self):
        model = DiskModel(
            name="t", avg_seek_s=0.02, rotation_s=0.01,
            transfer_bytes_per_s=1e6, locality=0.0,
        )
        # 0.02 seek + 0.005 half-rotation + 0.01 transfer of 10 KB.
        assert model.service_time(10_000) == pytest.approx(0.035)

    def test_locality_discounts_seek(self):
        base = DiskModel("t", 0.02, 0.01, 1e6, locality=0.0)
        local = DiskModel("t", 0.02, 0.01, 1e6, locality=0.5)
        assert local.service_time(0) == pytest.approx(base.service_time(0) - 0.01)

    def test_bigger_transfers_take_longer(self):
        assert FUJITSU_EAGLE.service_time(32768) > FUJITSU_EAGLE.service_time(4096)

    def test_large_blocks_cost_less_per_byte(self):
        small = FUJITSU_EAGLE.service_time(4096) / 4096
        large = FUJITSU_EAGLE.service_time(32768) / 32768
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskModel("t", -1, 0.01, 1e6)
        with pytest.raises(ValueError):
            DiskModel("t", 0.01, 0.01, 0)
        with pytest.raises(ValueError):
            DiskModel("t", 0.01, 0.01, 1e6, locality=1.0)
        with pytest.raises(ValueError):
            FUJITSU_EAGLE.service_time(-1)

    def test_estimate_from_metrics(self, small_trace):
        metrics = simulate_cache(small_trace, 1024 * 1024)
        estimate = DiskTimeEstimate.from_metrics(
            metrics, 4096, small_trace.duration
        )
        assert estimate.busy_seconds == pytest.approx(
            metrics.disk_ios * FUJITSU_EAGLE.service_time(4096)
        )
        assert 0 <= estimate.utilization < 1
        assert "utilization" in estimate.render()

    def test_block_size_time_tradeoff_visible(self, medium_trace):
        """Counting I/Os, huge blocks look nearly free; in disk *time* the
        transfer term pushes the optimum back toward smaller blocks."""
        from repro.cache.sweep import block_size_sweep

        sweep = block_size_sweep(
            medium_trace, block_sizes=(4096, 32768),
            cache_sizes=(4 * 1024 * 1024,),
        )
        cache = 4 * 1024 * 1024
        ios_ratio = sweep.disk_ios(32768, cache) / sweep.disk_ios(4096, cache)
        time_ratio = (
            sweep.disk_ios(32768, cache) * FUJITSU_EAGLE.service_time(32768)
        ) / (sweep.disk_ios(4096, cache) * FUJITSU_EAGLE.service_time(4096))
        assert time_ratio > ios_ratio  # time penalizes the big blocks


class TestTwoLevel:
    @pytest.fixture(scope="class")
    def result(self, medium_trace):
        return simulate_two_level(medium_trace)

    def test_client_caches_absorb_traffic(self, result):
        assert result.network_blocks < result.client_metrics.block_accesses

    def test_server_cache_absorbs_more(self, result):
        assert result.server_metrics.disk_ios < result.network_blocks

    def test_one_client_per_user(self, result, medium_trace):
        assert result.clients == len(medium_trace.user_ids())

    def test_network_rate_fits_ethernet(self, result):
        # The paper's conclusion: a 10 Mbit/s network (~1.25 MB/s) carries
        # this easily.
        assert result.network_bytes_per_second < 1.25e6 / 2

    def test_delayed_client_policy_cuts_network_writes(self, medium_trace):
        wt = simulate_two_level(medium_trace, client_policy=WRITE_THROUGH)
        dw = simulate_two_level(medium_trace, client_policy=DELAYED_WRITE)
        assert dw.client_metrics.disk_writes < wt.client_metrics.disk_writes
        assert dw.network_blocks < wt.network_blocks

    def test_bigger_client_caches_cut_network_traffic(self, medium_trace):
        small = simulate_two_level(medium_trace, client_cache_bytes=128 * 1024)
        big = simulate_two_level(medium_trace, client_cache_bytes=2 * 1024 * 1024)
        assert big.network_blocks <= small.network_blocks

    def test_render(self, result):
        text = result.render()
        assert "client" in text and "server" in text


class TestPopularity:
    def test_counts_and_ranking(self):
        events = []
        t = 0.0
        for i, fid in enumerate([7, 7, 7, 8]):
            events.append(OpenEvent(time=t, open_id=i, file_id=fid, user_id=1,
                                    size=1000, mode=AccessMode.READ))
            events.append(CloseEvent(time=t + 0.1, open_id=i, final_pos=1000))
            t += 1.0
        report = analyze_popularity(TraceLog.from_events(events))
        assert report.total_accesses == 4
        assert report.files[0].file_id == 7
        assert report.files[0].accesses == 3
        assert report.top_fraction(1) == pytest.approx(0.75)

    def test_large_file_access_fraction(self):
        events = [
            OpenEvent(time=0.0, open_id=1, file_id=1, user_id=1,
                      size=1024 * 1024, mode=AccessMode.READ),
            CloseEvent(time=0.1, open_id=1, final_pos=2048),
            OpenEvent(time=1.0, open_id=2, file_id=2, user_id=1,
                      size=100, mode=AccessMode.READ),
            CloseEvent(time=1.1, open_id=2, final_pos=100),
        ]
        report = analyze_popularity(TraceLog.from_events(events))
        assert report.large_file_access_fraction() == pytest.approx(0.5)

    def test_generated_trace_shows_concentration(self, medium_trace):
        report = analyze_popularity(medium_trace)
        # A hot minority takes a large share (Zipf-ish), like the paper's
        # administrative files and shared headers.
        assert report.top_fraction(10) > 0.15
        # And the big-file share resembles "almost 20% of all accesses".
        assert 0.05 <= report.large_file_access_fraction() <= 0.35

    def test_render(self, small_trace):
        assert "accesses" in analyze_popularity(small_trace).render()


class TestDiskModelEdges:
    """Edge cases: zero-I/O metrics and the locality bounds."""

    def test_zero_io_estimate(self):
        estimate = DiskTimeEstimate.from_metrics(
            CacheMetrics(), 4096, trace_seconds=3600.0
        )
        assert estimate.disk_ios == 0
        assert estimate.busy_seconds == 0.0
        assert estimate.utilization == 0.0
        assert "0.0% utilization" in estimate.render()

    def test_zero_duration_guard(self):
        metrics = CacheMetrics(disk_reads=100)
        estimate = DiskTimeEstimate.from_metrics(metrics, 4096, trace_seconds=0.0)
        assert estimate.busy_seconds > 0
        assert estimate.utilization == 0.0  # guarded, not a ZeroDivisionError

    def test_locality_zero_pays_full_seek(self):
        model = DiskModel("t", avg_seek_s=0.02, rotation_s=0.01,
                          transfer_bytes_per_s=1e6, locality=0.0)
        assert model.service_time(0) == pytest.approx(0.02 + 0.005)

    def test_locality_approaching_one_leaves_rotation_only(self):
        model = DiskModel("t", avg_seek_s=0.02, rotation_s=0.01,
                          transfer_bytes_per_s=1e6, locality=1.0 - 1e-9)
        assert model.service_time(0) == pytest.approx(0.005, rel=1e-6)

    def test_locality_one_is_rejected(self):
        with pytest.raises(ValueError):
            DiskModel("t", 0.02, 0.01, 1e6, locality=1.0)
        with pytest.raises(ValueError):
            DiskModel("t", 0.02, 0.01, 1e6, locality=-0.1)


class TestTwoLevelClientCounts:
    """Single-client vs many-client paths, and the render/rate guards."""

    def test_single_client(self, medium_trace):
        from repro.trace.ops import filter_users

        user = sorted(medium_trace.user_ids())[0]
        solo = filter_users(medium_trace, [user])
        result = simulate_two_level(solo)
        assert result.clients == 1
        assert result.network_blocks <= result.client_metrics.block_accesses

    def test_many_clients_see_more_total_traffic_than_one(self, medium_trace):
        from repro.trace.ops import filter_users

        user = sorted(medium_trace.user_ids())[0]
        solo = simulate_two_level(filter_users(medium_trace, [user]))
        everyone = simulate_two_level(medium_trace)
        assert everyone.clients > 1
        assert everyone.network_blocks > solo.network_blocks

    def test_zero_duration_guards(self):
        from repro.cache.twolevel import TwoLevelResult

        result = TwoLevelResult(
            client_cache_bytes=512 * 1024,
            server_cache_bytes=16 * 1024 * 1024,
            block_size=4096,
            duration=0.0,
        )
        assert result.network_bytes_per_second == 0.0
        assert "rate unavailable" in result.render()

    def test_consistency_messages_default(self, medium_trace):
        result = simulate_two_level(medium_trace)
        assert result.consistency_messages == 0
        assert "consistency messages: 0" in result.render()
