"""Tests for the ``repro.fuzz`` harness itself.

Covers the input model (determinism, validity, golden encodings), the
replay oracle, the differential oracles, the fault-injection layer (and
the three reader bugs it found, as regression tests), ddmin shrinking,
the corpus, and an end-to-end ``run_fuzz``.
"""

from __future__ import annotations

import hashlib
import io
import random
import struct

import pytest

from repro.fuzz.faults import (
    FaultPlan,
    NetfsFaults,
    _count_offset,
    check_corruption,
    check_netfs_convergence,
)
from repro.fuzz.gen import SyscallOp, apply_ops, random_ops, random_trace
from repro.fuzz.oracles import Divergence, canonicalize_times, check_all
from repro.fuzz.runner import FuzzConfig, _check_ops, run_fuzz
from repro.fuzz.shrink import ddmin, load_corpus, replay_corpus, write_corpus_entry
from repro.trace.io_binary import (
    BinaryTraceError,
    read_binary,
    read_binary_columns,
    write_binary,
)
from repro.trace.log import TraceLog
from repro.trace.records import AccessMode, CloseEvent, OpenEvent, quantize_time
from repro.trace.validate import validate
from repro.unixfs.check import fsck


def _serialized(seed: str, n: int = 40) -> bytes:
    log = random_trace(random.Random(f"trace:{seed}"), n)
    buf = io.BytesIO()
    write_binary(log, buf)
    return buf.getvalue()


# -- input model ---------------------------------------------------------------


class TestGenerators:
    def test_random_trace_is_deterministic(self):
        a = random_trace(random.Random("trace:x"), 60)
        b = random_trace(random.Random("trace:x"), 60)
        assert a.events == b.events

    def test_random_trace_validates(self):
        for seed in range(10):
            log = random_trace(random.Random(f"trace:{seed}"), 80)
            assert validate(log).ok, f"seed {seed}"

    def test_random_ops_is_deterministic(self):
        a = random_ops(random.Random("ops:x"), 50)
        b = random_ops(random.Random("ops:x"), 50)
        assert a == b

    def test_random_ops_all_execute(self):
        # The shadow model mirrors the executor exactly, so on a fresh
        # file system nothing is skipped and the result passes fsck.
        for seed in range(10):
            result = apply_ops(random_ops(random.Random(f"ops:{seed}"), 60))
            assert result.skipped == 0, f"seed {seed}"
            assert fsck(result.fs).ok, f"seed {seed}"

    def test_syscall_op_json_round_trip(self):
        ops = random_ops(random.Random("ops:json"), 30)
        assert [SyscallOp.from_json(op.to_json()) for op in ops] == ops


class TestGoldenEncodings:
    """SHA-256 digests of the binary encoding for fixed generator seeds.

    These pin both the generator's output and the on-disk format: any
    change to either — a struct layout, the magic, the event mix — shows
    up here before it silently invalidates old trace files.
    """

    GOLDEN = {
        "golden:1": (
            111,
            "05391d4aec472d186e30eeb9e98c0b04bfd8b0189a78bd1de180947025f55da5",
        ),
        "golden:2": (
            107,
            "25677cece8a583f540a0a52cac13344e784a9962853a809820af9b9a5cfae356",
        ),
        "golden:3": (
            112,
            "d80a69a0030318b9d9bc2aaf619033c482517edd61131809952b588cd33a96a6",
        ),
    }

    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    def test_digest(self, seed):
        log = random_trace(random.Random(f"trace:{seed}"), 100)
        buf = io.BytesIO()
        write_binary(log, buf)
        events, digest = self.GOLDEN[seed]
        assert len(log.events) == events
        assert hashlib.sha256(buf.getvalue()).hexdigest() == digest


# -- replay oracle -------------------------------------------------------------


class TestReplayOracle:
    def test_clean_sequences_pass(self):
        for seed in range(5):
            ops = random_ops(random.Random(f"ops:{seed}"), 60)
            assert _check_ops(ops) is None, f"seed {seed}"

    def test_tampered_log_is_flagged(self):
        from repro.fuzz.replay import ReplayChecker

        result = apply_ops(random_ops(random.Random("ops:tamper"), 30))
        log = result.tracer.log
        # A close for an open id the kernel never issued.
        log.events.append(
            CloseEvent(time=log.end_time + 1.0, open_id=999_999, final_pos=0)
        )
        checker = ReplayChecker(result.fs, log)
        assert checker.check_step() is not None


# -- differential oracles ------------------------------------------------------


class TestDifferentialOracles:
    def test_clean_traces_pass(self):
        for seed in range(5):
            log = random_trace(random.Random(f"trace:{seed}"), 80)
            assert check_all(log) is None, f"seed {seed}"

    def test_canonicalize_times_fixes_kernel_quantization(self):
        # quantize_time returns n*0.01, the binary decoder n/100.0; the
        # two differ in the last ulp for ~14% of centisecond values
        # (n=35 is one) — without canonicalization, exact round-trip
        # comparison of a kernel trace would be a false positive.
        assert quantize_time(0.35) != 35 / 100.0
        log = TraceLog(
            name="t",
            events=[
                OpenEvent(time=quantize_time(0.35), open_id=1, file_id=1,
                          user_id=0, size=0, mode=AccessMode.READ)
            ],
        )
        fixed = canonicalize_times(log)
        assert fixed.events[0].time == 35 / 100.0
        buf = io.BytesIO()
        write_binary(fixed, buf)
        buf.seek(0)
        assert read_binary(buf).events == fixed.events

    def test_divergence_summary_mentions_repro(self):
        d = Divergence(pillar="io", detail="boom", seed="1:2",
                       shrunk_events=3, corpus_entry="trace-1-2")
        s = d.summary()
        assert "io" in s and "boom" in s and "1:2" in s and "trace-1-2" in s


# -- fault injection -----------------------------------------------------------


class TestCorruption:
    def test_clean_pipeline_survives_the_plan(self):
        log = random_trace(random.Random("trace:faults"), 80)
        detail, cases = check_corruption(log, FaultPlan(seed="t", cases=24))
        assert detail is None
        assert cases == 24

    def test_truncated_file_rejected_with_diagnostic(self):
        data = _serialized("trunc")
        for cut in (0, 5, len(data) // 2, len(data) - 1):
            for reader in (read_binary, read_binary_columns):
                with pytest.raises(BinaryTraceError):
                    reader(io.BytesIO(data[:cut]))

    def test_inflated_count_is_a_diagnostic_not_a_memoryerror(self):
        # Regression: read_binary_columns sizes its arrays from the
        # untrusted header count; a huge lie used to raise MemoryError.
        data = bytearray(_serialized("count"))
        at = _count_offset(bytes(data))
        data[at:at + 8] = struct.pack("<Q", 1 << 56)
        for reader in (read_binary, read_binary_columns):
            with pytest.raises(BinaryTraceError, match="claims|truncated"):
                reader(io.BytesIO(bytes(data)))

    def _first_open_record(self, data: bytes) -> int:
        """Offset of the first open record's tag byte (scan the body)."""
        from repro.trace.columns import KIND_CREATE, KIND_OPEN

        off = _count_offset(data) + 8
        while data[off] != KIND_OPEN:
            assert data[off] == KIND_CREATE  # only other leading kind
            off += 1 + struct.calcsize("<III")
        return off

    def test_high_bit_u64_is_a_diagnostic_not_an_overflowerror(self):
        # Regression: a set high bit in the open record's size field
        # used to crash the columnar reader's signed arrays.
        data = bytearray(_serialized("highbit"))
        size_high = self._first_open_record(bytes(data)) + 1 + 16 + 7
        data[size_high] |= 0x80
        for reader in (read_binary, read_binary_columns):
            with pytest.raises(BinaryTraceError, match="signed 64-bit"):
                reader(io.BytesIO(bytes(data)))

    def test_invalid_mode_byte_rejected_by_both_readers(self):
        # Regression: the columnar reader used to fold a flipped mode
        # bit into the created/new-file flags and decode a clean-looking
        # *different* trace while the event reader rejected it.
        data = bytearray(_serialized("mode"))
        mode_at = self._first_open_record(bytes(data)) + 1 + 16 + 8
        for bad in (0, 4, 5, 65):
            corrupt = bytearray(data)
            corrupt[mode_at] = bad
            with pytest.raises(ValueError):
                read_binary(io.BytesIO(bytes(corrupt)))
            with pytest.raises(BinaryTraceError, match="access mode"):
                read_binary_columns(io.BytesIO(bytes(corrupt)))


class TestNetfsFaults:
    def test_convergence_under_faults(self):
        log = random_trace(random.Random("trace:netfs"), 60)
        assert check_netfs_convergence(log, seed=3) is None

    def test_drop_decisions_are_order_independent(self):
        faults = NetfsFaults(seed=1)
        a = [faults._die(rpc_id, "drop") for rpc_id in range(50)]
        b = [faults._die(rpc_id, "drop") for rpc_id in reversed(range(50))]
        assert a == list(reversed(b))


# -- shrinking and the corpus --------------------------------------------------


class TestShrink:
    def test_ddmin_reaches_the_minimal_core(self):
        items = list(range(100))
        calls = []

        def still_fails(candidate):
            calls.append(len(candidate))
            return 37 in candidate and 73 in candidate

        assert sorted(ddmin(items, still_fails)) == [37, 73]

    def test_ddmin_single_culprit(self):
        assert ddmin(list(range(64)), lambda c: 5 in c) == [5]

    def test_corpus_round_trip(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        log = random_trace(random.Random("trace:corpus"), 20)
        ops = random_ops(random.Random("ops:corpus"), 10)
        write_corpus_entry(corpus, name="a", pillar="io", detail="d",
                           seed="s", events=list(log.events))
        write_corpus_entry(corpus, name="b", pillar="replay", detail="d2",
                           seed="s2", ops=ops)
        entries = {e["name"]: e for e in load_corpus(corpus)}
        assert entries["a"]["log"].events == log.events
        assert entries["b"]["op_list"] == ops

    def test_replay_corpus_reports_still_failing(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        log = random_trace(random.Random("trace:replay"), 15)
        write_corpus_entry(corpus, name="x", pillar="io", detail="d",
                           seed="s", events=list(log.events))
        replayed, failing = replay_corpus(
            corpus,
            check_events=lambda _log: ("io", "still broken"),
            check_ops=lambda _ops: None,
        )
        assert replayed == 1
        assert failing == [("x", "io", "still broken")]
        replayed, failing = replay_corpus(
            corpus,
            check_events=lambda _log: None,
            check_ops=lambda _ops: None,
        )
        assert replayed == 1 and failing == []


# -- end to end ----------------------------------------------------------------


class TestRunFuzz:
    def test_small_budget_run_is_clean_and_deterministic(self):
        a = run_fuzz(FuzzConfig(seed=11, budget=300))
        b = run_fuzz(FuzzConfig(seed=11, budget=300))
        assert a.ok, [d.summary() for d in a.divergences]
        assert (a.rounds, a.steps, a.ops_executed, a.events_checked,
                a.corruption_cases) == (
            b.rounds, b.steps, b.ops_executed, b.events_checked,
            b.corruption_cases,
        )
        assert a.rounds >= 1
        assert "OK" in a.summary()

    def test_corpus_is_replayed_first(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        log = random_trace(random.Random("trace:seeded"), 15)
        write_corpus_entry(corpus, name="old", pillar="io", detail="fixed",
                           seed="s", events=list(log.events))
        report = run_fuzz(FuzzConfig(seed=1, budget=1, corpus=corpus))
        assert report.corpus_replayed == 1
        assert report.ok  # the stored repro passes on current code

    def test_cli_smoke(self, capsys):
        from repro.cli.main import main

        assert main(["fuzz", "--seed", "1", "--budget", "60"]) == 0
        out = capsys.readouterr().out
        assert "fuzz: OK" in out


class TestCorpusPillar:
    """Pillar 4: the out-of-core corpus codec oracles."""

    def _trace(self, seed: str, n: int = 90) -> TraceLog:
        return random_trace(random.Random(f"corpus-pillar:{seed}"), n)

    def test_clean_traces_pass_all_corpus_oracles(self):
        from repro.fuzz.corpus import (
            check_corpus_roundtrip,
            check_corpus_streaming,
        )

        for seed in ("a", "b", "c"):
            log = self._trace(seed)
            assert check_corpus_roundtrip(log) is None
            assert check_corpus_streaming(log) is None

    def test_check_corpus_all_flags_injected_codec_bug(self, monkeypatch):
        # Break the event-append path only: the write-path equivalence
        # oracle must notice the two writers no longer agree.
        from repro.corpus import writer as corpus_writer
        from repro.fuzz.corpus import check_corpus_all

        original = corpus_writer.CorpusWriter.append

        def buggy(self, event):
            original(self, event)
            if self._flags:  # append may have just flushed the segment
                self._flags[-1] ^= 0x01  # flip a flag bit after the fact

        monkeypatch.setattr(corpus_writer.CorpusWriter, "append", buggy)
        found = check_corpus_all(self._trace("inject"))
        assert found is not None
        pillar, detail = found
        assert pillar == "corpus"
        assert "different bytes" in detail

    def test_corruption_plan_all_detected(self):
        from repro.fuzz.corpus import CorpusFaultPlan, check_corpus_corruption

        plan = CorpusFaultPlan(seed="plan-1", cases=24)
        detail, cases = check_corpus_corruption(self._trace("plan"), plan)
        assert detail is None, detail
        assert cases == 24

    def test_corruption_plan_is_deterministic(self):
        from repro.fuzz.corpus import CorpusFaultPlan, _pack_via_columns
        from repro.trace.columns import TraceColumns

        data = _pack_via_columns(
            TraceColumns.from_log(self._trace("det")), 32
        )
        labels = [
            label for label, _ in CorpusFaultPlan("x", cases=12).corruptions(data)
        ]
        again = [
            label for label, _ in CorpusFaultPlan("x", cases=12).corruptions(data)
        ]
        assert labels == again
        assert len(labels) == 12

    def test_runner_counts_corpus_work(self):
        report = run_fuzz(FuzzConfig(seed=3, budget=400))
        assert report.ok, [d.summary() for d in report.divergences]
        assert report.corpus_events > 0
        assert report.corpus_corruptions > 0
        assert "corpus codec" in report.summary()
