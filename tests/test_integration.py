"""Integration tests: the full pipeline reproduces the paper's shapes.

These assertions are deliberately loose — we claim the *shape* of each
result (who wins, roughly by how much, where the knees fall), not the
paper's absolute numbers, which depended on 1985 Berkeley's users.
"""

import pytest

from repro.analysis import (
    analyze_activity,
    analyze_sequentiality,
    collect_lifetimes,
    daemon_spike_fraction,
    file_size_cdfs,
    lifetime_cdfs,
    open_time_cdf,
    reconstruct_accesses,
    run_length_cdfs,
)
from repro.cache.policies import DELAYED_WRITE, FLUSH_30S, FLUSH_5MIN, WRITE_THROUGH
from repro.cache.simulator import simulate_cache
from repro.cache.sweep import block_size_sweep, cache_size_policy_sweep
from repro.trace.stats import compute_stats
from repro.workload.generator import generate_trace
from repro.workload.profiles import UCBCAD, UCBERNIE

MB = 1024 * 1024


@pytest.fixture(scope="module")
def accesses(medium_trace):
    return reconstruct_accesses(medium_trace)


class TestEventMixShape:
    """Table III: the event mix resembles the paper's."""

    def test_closes_match_opens_plus_creates(self, medium_trace):
        stats = compute_stats(medium_trace)
        opens = stats.kind_counts.get("open", 0) + stats.kind_counts.get("create", 0)
        # Nearly every open is closed within the trace.
        assert stats.kind_counts["close"] == pytest.approx(opens, rel=0.02)

    def test_seeks_are_a_large_minority(self, medium_trace):
        stats = compute_stats(medium_trace)
        assert 8 <= stats.kind_percent("seek") <= 30

    def test_creates_and_unlinks_small(self, medium_trace):
        stats = compute_stats(medium_trace)
        assert stats.kind_percent("create") < 10
        assert stats.kind_percent("unlink") < 10
        assert stats.kind_percent("trunc") < 1


class TestActivityShape:
    """Table IV: users need only a few hundred bytes/second on average."""

    def test_per_user_throughput_hundreds_of_bytes(self, medium_trace):
        report = analyze_activity(medium_trace)
        assert 50 <= report.ten_minute.mean_user_throughput <= 2000

    def test_bursts_are_much_hotter_than_averages(self, medium_trace):
        report = analyze_activity(medium_trace)
        assert (
            report.ten_second.mean_user_throughput
            > 3 * report.ten_minute.mean_user_throughput
        )

    def test_fewer_users_active_in_short_windows(self, medium_trace):
        report = analyze_activity(medium_trace)
        assert (
            report.ten_second.mean_active_users
            < report.ten_minute.mean_active_users
        )


class TestSequentialityShape:
    """Table V: most access is sequential, most of it whole-file."""

    def test_whole_file_dominates(self, medium_trace, accesses):
        report = analyze_sequentiality(medium_trace, accesses)
        assert report.read.percent_whole() > 60
        assert report.write.percent_whole() > 70

    def test_sequential_over_90_percent(self, medium_trace, accesses):
        report = analyze_sequentiality(medium_trace, accesses)
        assert report.read.percent_sequential() > 90
        assert report.write.percent_sequential() > 90

    def test_read_write_mostly_non_sequential(self, medium_trace, accesses):
        report = analyze_sequentiality(medium_trace, accesses)
        assert report.read_write.accesses > 0
        assert report.read_write.percent_sequential() < 50

    def test_bytes_less_concentrated_than_accesses(self, medium_trace, accesses):
        report = analyze_sequentiality(medium_trace, accesses)
        assert 40 <= report.percent_bytes_whole_file <= 80

    def test_run_lengths(self, medium_trace, accesses):
        by_runs, by_bytes = run_length_cdfs(medium_trace, accesses)
        assert by_runs.fraction_at_or_below(4096) > 0.5
        # Long runs carry a disproportionate share of the bytes.
        assert 1 - by_bytes.fraction_at_or_below(25 * 1024) > 0.15


class TestSizeAndOpenTimeShape:
    """Figures 2 and 3."""

    def test_most_accesses_to_small_files(self, medium_trace, accesses):
        by_accesses, by_bytes = file_size_cdfs(medium_trace, accesses)
        assert by_accesses.fraction_at_or_below(10 * 1024) > 0.6
        assert by_bytes.fraction_at_or_below(10 * 1024) < 0.5

    def test_open_times_short(self, medium_trace, accesses):
        cdf = open_time_cdf(medium_trace, accesses)
        assert cdf.fraction_at_or_below(0.5) > 0.6
        assert cdf.fraction_at_or_below(10.0) > 0.85
        # And a real tail exists.
        assert cdf.fraction_at_or_below(10.0) < 1.0


class TestLifetimeShape:
    """Figure 4: most new data dies young; the 180 s daemon spike."""

    def test_most_new_files_die_within_minutes(self, medium_trace):
        lifetimes = collect_lifetimes(medium_trace)
        by_files, by_bytes = lifetime_cdfs(medium_trace, lifetimes)
        assert by_files.fraction_at_or_below(300.0) > 0.6
        assert by_bytes.fraction_at_or_below(300.0) > 0.4

    def test_daemon_spike_visible(self, medium_trace):
        lifetimes = collect_lifetimes(medium_trace)
        spike = daemon_spike_fraction(lifetimes)
        assert 0.1 <= spike <= 0.6


class TestCacheShape:
    """Tables VI and VII: the paper's cache conclusions."""

    @pytest.fixture(scope="class")
    def sweep(self, medium_trace):
        return cache_size_policy_sweep(
            medium_trace, cache_sizes=(390 * 1024, 2 * MB, 4 * MB, 16 * MB)
        )

    def test_unix_default_cache_roughly_halves_traffic(self, sweep):
        # "even moderate-sized caches ... reduce disk traffic for file
        # blocks by about 50%" (with the 30 s sync policy UNIX used).
        assert sweep.miss_ratio(390 * 1024, FLUSH_30S) < 0.75

    def test_4mb_cache_eliminates_most_io(self, sweep):
        # Table I: a 4 MB cache removes 65-90% of disk accesses
        # (policy-dependent).
        assert sweep.miss_ratio(4 * MB, DELAYED_WRITE) < 0.35
        assert sweep.miss_ratio(4 * MB, WRITE_THROUGH) < 0.65

    def test_policy_ordering(self, sweep):
        for size in sweep.cache_sizes:
            wt = sweep.miss_ratio(size, WRITE_THROUGH)
            f30 = sweep.miss_ratio(size, FLUSH_30S)
            f5 = sweep.miss_ratio(size, FLUSH_5MIN)
            dw = sweep.miss_ratio(size, DELAYED_WRITE)
            assert wt >= f30 >= f5 >= dw

    def test_delayed_write_under_10_percent_at_16mb(self, sweep):
        assert sweep.miss_ratio(16 * MB, DELAYED_WRITE) < 0.10

    def test_large_blocks_win_and_then_turn_up(self, medium_trace):
        sweep = block_size_sweep(medium_trace)
        # Large blocks beat 1 KB blocks everywhere (Figure 6).
        for cache in sweep.cache_sizes:
            assert sweep.disk_ios(8192, cache) < sweep.disk_ios(1024, cache)
        # The optimum lies in the large-block range for every cache size.
        for cache in sweep.cache_sizes:
            assert sweep.best_block_size(cache) >= 8192
        # Huge blocks stop helping: going 16 K -> 32 K the curve flattens or
        # turns up at every cache size (Figure 6's right-hand upturn) ...
        for cache in sweep.cache_sizes:
            assert sweep.disk_ios(32768, cache) > 0.9 * sweep.disk_ios(16384, cache)
        # ... and at some cache size the upturn is strict.
        assert any(
            sweep.disk_ios(32768, cache) > sweep.disk_ios(16384, cache)
            for cache in sweep.cache_sizes
        )

    def test_delayed_write_elides_most_dead_writes(self, medium_trace):
        metrics = simulate_cache(medium_trace, 16 * MB, policy=DELAYED_WRITE)
        # "about 75% of the newly-written blocks were overwritten or their
        # files were deleted before the blocks were ejected."
        assert metrics.dirty_discard_fraction > 0.4


class TestCrossMachineSimilarity:
    """Section 7: the three traces give similar results."""

    @pytest.mark.parametrize("profile", [UCBERNIE, UCBCAD], ids=lambda p: p.name)
    def test_other_machines_match_a5_shapes(self, profile, medium_trace):
        other = generate_trace(profile, seed=9, duration=3600.0)
        seq_other = analyze_sequentiality(other)
        seq_a5 = analyze_sequentiality(medium_trace)
        assert abs(
            seq_other.read.percent_sequential() - seq_a5.read.percent_sequential()
        ) < 10
        assert seq_other.write.percent_whole() > 70
        cdf = open_time_cdf(other)
        assert cdf.fraction_at_or_below(10.0) > 0.8


class TestMachineCharacter:
    """Each profile keeps its machine's documented character."""

    def test_cad_machine_moves_bigger_files(self, medium_trace):
        cad = generate_trace(UCBCAD, seed=4, duration=3600.0)
        from repro.analysis import file_size_cdfs

        cad_sizes, _ = file_size_cdfs(cad)
        a5_sizes, _ = file_size_cdfs(medium_trace)
        # CAD decks are tens-to-hundreds of KB; the upper-middle of the
        # size distribution sits above A5's.  (Both machines' far tail is
        # the same ~1 MB administrative files, so compare at the 75th
        # percentile rather than the 90th.)
        assert cad_sizes.percentile(0.75) > 1.3 * a5_sizes.percentile(0.75)

    def test_cad_machine_has_fewer_users(self):
        cad = generate_trace(UCBCAD, seed=4, duration=1800.0)
        ernie = generate_trace(UCBERNIE, seed=4, duration=1800.0)
        assert len(cad.user_ids()) < len(ernie.user_ids())

    def test_ernie_formats_more_than_arpa(self):
        # E3 carries the secretarial load: more formatting/printing execs.
        from repro.workload.profiles import UCBARPA as A, UCBERNIE as E

        weight = {name: w for name, w in E.activity_mix}
        weight_a = {name: w for name, w in A.activity_mix}
        assert weight["format"] > weight_a["format"]
        assert weight["print"] > weight_a["print"]
