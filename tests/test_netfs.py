"""Tests for the discrete-event network file service (repro.netfs)."""

from __future__ import annotations

import pytest

from repro.cache.simulator import BlockCacheSimulator
from repro.disk.model import DiskModel
from repro.netfs import (
    EthernetModel,
    EventLoop,
    RpcConfig,
    simulate_netfs,
)
from repro.netfs.metrics import LatencySampler, QueueTracker
from repro.netfs.network import Ethernet
from repro.trace.log import TraceLog
from repro.trace.records import AccessMode, CloseEvent, OpenEvent, UnlinkEvent


# ---------------------------------------------------------------------------
# Event engine
# ---------------------------------------------------------------------------


class TestEventLoop:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        fired: list[str] = []
        loop.schedule(3.0, fired.append, "c")
        loop.schedule(1.0, fired.append, "a")
        loop.schedule(2.0, fired.append, "b")
        assert loop.run() == 3.0
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        loop = EventLoop()
        fired: list[int] = []
        for i in range(5):
            loop.schedule(1.0, fired.append, i)
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_callbacks_can_schedule_more(self):
        loop = EventLoop()
        fired: list[str] = []

        def first():
            fired.append("first")
            loop.call_after(0.5, lambda: fired.append("second"))

        loop.schedule(1.0, first)
        end = loop.run()
        assert fired == ["first", "second"]
        assert end == 1.5

    def test_cancelled_events_do_not_fire(self):
        loop = EventLoop()
        fired: list[str] = []
        handle = loop.schedule(1.0, fired.append, "dead")
        loop.schedule(2.0, fired.append, "alive")
        handle.cancel()
        loop.run()
        assert fired == ["alive"]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(1.0, lambda: None)
        with pytest.raises(ValueError):
            loop.call_after(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        loop = EventLoop()
        fired: list[int] = []
        loop.schedule(1.0, fired.append, 1)
        loop.schedule(10.0, fired.append, 10)
        loop.run(until=5.0)
        assert fired == [1]
        loop.run()
        assert fired == [1, 10]

    def test_events_fired_excludes_cancelled(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        handle.cancel()
        loop.run()
        assert loop.events_fired == 1


# ---------------------------------------------------------------------------
# Ethernet model
# ---------------------------------------------------------------------------


class TestEthernet:
    def test_wire_time_includes_overhead(self):
        model = EthernetModel()
        assert model.wire_time(1000) == pytest.approx((1000 + 38) * 8 / 10e6)

    def test_small_frames_are_padded(self):
        model = EthernetModel()
        assert model.wire_time(1) == pytest.approx(64 * 8 / 10e6)

    def test_large_payloads_fragment(self):
        model = EthernetModel()
        assert model.frames_for(4000) == 3
        assert model.wire_time(4000) == pytest.approx((4000 + 3 * 38) * 8 / 10e6)

    def test_fifo_queueing_delay(self):
        ether = Ethernet()
        start1, finish1 = ether.send(0.0, 1500)
        start2, finish2 = ether.send(0.0, 1500)
        assert start1 == 0.0
        assert start2 == finish1  # waited for the wire
        assert ether.queue_delays[1] == pytest.approx(finish1)
        assert ether.frames_sent == 2

    def test_utilization(self):
        ether = Ethernet()
        ether.send(0.0, 10_000)
        busy = ether.busy_seconds
        assert ether.utilization(busy * 2) == pytest.approx(0.5)
        assert ether.utilization(0.0) == 0.0


# ---------------------------------------------------------------------------
# RPC configuration
# ---------------------------------------------------------------------------


class TestRpcConfig:
    def test_backoff_doubles_and_caps(self):
        config = RpcConfig(timeout_s=0.1, backoff_factor=2.0, backoff_cap_s=0.5)
        assert config.timeout_for_attempt(1) == pytest.approx(0.1)
        assert config.timeout_for_attempt(2) == pytest.approx(0.2)
        assert config.timeout_for_attempt(3) == pytest.approx(0.4)
        assert config.timeout_for_attempt(4) == pytest.approx(0.5)  # capped
        assert config.timeout_for_attempt(10) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RpcConfig(timeout_s=0.0)
        with pytest.raises(ValueError):
            RpcConfig(max_retries=-1)
        with pytest.raises(ValueError):
            RpcConfig(backoff_factor=0.5)


# ---------------------------------------------------------------------------
# Metrics helpers
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_percentiles_nearest_rank(self):
        sampler = LatencySampler()
        for value in range(1, 101):
            sampler.add(float(value))
        summary = sampler.summarize()
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.max == 100.0
        assert summary.mean == pytest.approx(50.5)

    def test_empty_sampler(self):
        summary = LatencySampler().summarize()
        assert summary.count == 0
        assert summary.p99 == 0.0
        assert "no samples" in summary.render("x")

    def test_queue_tracker_time_weighted_mean(self):
        tracker = QueueTracker()
        tracker.update(0.0, 2)
        tracker.update(1.0, 4)  # depth 2 held for 1 s
        tracker.update(3.0, 0)  # depth 4 held for 2 s
        assert tracker.max_depth == 4
        assert tracker.mean_depth(10.0) == pytest.approx((2 * 1 + 4 * 2) / 10.0)
        assert tracker.mean_depth(0.0) == 0.0


# ---------------------------------------------------------------------------
# Cache control additions (drop_file / flush_file)
# ---------------------------------------------------------------------------


class TestCacheControl:
    def _loaded_cache(self) -> BlockCacheSimulator:
        from repro.analysis.accesses import Transfer

        sim = BlockCacheSimulator(cache_bytes=64 * 1024, block_size=4096)
        sim.run([
            Transfer(time=0.0, file_id=1, user_id=1, start=0, end=16384,
                     is_write=True),
            Transfer(time=0.1, file_id=2, user_id=1, start=0, end=8192,
                     is_write=False),
        ])
        return sim

    def test_flush_file_writes_dirty_blocks(self):
        sim = self._loaded_cache()
        before = sim.metrics.disk_writes
        assert sim.flush_file(1) == 4
        assert sim.metrics.disk_writes == before + 4
        assert sim.flush_file(1) == 0  # now clean
        assert sim.flush_file(2) == 0  # never dirty
        assert sim.flush_file(99) == 0  # unknown file

    def test_drop_file_invalidates_without_forgetting_size(self):
        sim = self._loaded_cache()
        sim.drop_file(1, now=1.0)
        assert sim.metrics.invalidated_blocks == 4
        assert sim.metrics.dirty_blocks_discarded == 4
        # The file still has its known size: a later partial write of an
        # interior block must re-read it (no beyond-EOF elision).
        assert sim._known_size[1] == 16384


# ---------------------------------------------------------------------------
# Synthetic traces
# ---------------------------------------------------------------------------


def _write_heavy_trace(bursts: int = 40, reread_every: int = 5) -> TraceLog:
    """User 2 rewrites one 16 KB file over and over; user 1 re-reads it
    now and then, keeping the sharing (and the consistency traffic) alive."""
    events = []
    open_id = 0
    t = 0.0
    events.append(OpenEvent(time=t, open_id=open_id, file_id=10, user_id=1,
                            size=16384, mode=AccessMode.READ))
    events.append(CloseEvent(time=t + 0.2, open_id=open_id, final_pos=16384))
    open_id += 1
    t = 1.0
    for burst in range(bursts):
        events.append(OpenEvent(time=t, open_id=open_id, file_id=10, user_id=2,
                                size=16384, mode=AccessMode.WRITE))
        events.append(CloseEvent(time=t + 0.2, open_id=open_id,
                                 final_pos=16384))
        open_id += 1
        t += 1.0
        if burst % reread_every == reread_every - 1:
            events.append(OpenEvent(time=t, open_id=open_id, file_id=10,
                                    user_id=1, size=16384,
                                    mode=AccessMode.READ))
            events.append(CloseEvent(time=t + 0.2, open_id=open_id,
                                     final_pos=16384))
            open_id += 1
            t += 1.0
    return TraceLog(name="write-heavy", events=events)


def _burst_trace(users: int = 8, file_kb: int = 64) -> TraceLog:
    """Many users each whole-file-read a distinct file at the same instant:
    maximal simultaneous demand on the server queue."""
    events = []
    for user in range(1, users + 1):
        events.append(OpenEvent(time=0.0, open_id=user, file_id=100 + user,
                                user_id=user, size=file_kb * 1024,
                                mode=AccessMode.READ))
        events.append(CloseEvent(time=0.01, open_id=user,
                                 final_pos=file_kb * 1024))
    return TraceLog(name="burst", events=events)


# ---------------------------------------------------------------------------
# Consistency protocols
# ---------------------------------------------------------------------------


class TestConsistency:
    def test_ownership_beats_callbacks_when_write_heavy(self):
        trace = _write_heavy_trace()
        callbacks = simulate_netfs(trace, protocol="callbacks")
        ownership = simulate_netfs(trace, protocol="ownership")
        # The tentpole claim: leases collapse a write storm into a grant
        # plus occasional recalls, where callbacks bill every write.
        assert ownership.network_messages < callbacks.network_messages
        assert ownership.rpcs < callbacks.rpcs

    def test_callbacks_sends_callbacks(self):
        result = simulate_netfs(_write_heavy_trace(), protocol="callbacks")
        assert result.consistency.get("callback", 0) > 0
        assert result.consistency_messages == sum(result.consistency.values())

    def test_ownership_grants_and_recalls(self):
        result = simulate_netfs(_write_heavy_trace(), protocol="ownership")
        assert result.consistency.get("grant", 0) > 0
        assert result.consistency.get("recall", 0) > 0

    def test_unlink_broadcasts_invalidations(self):
        events = [
            OpenEvent(time=0.0, open_id=1, file_id=5, user_id=1, size=8192,
                      mode=AccessMode.READ),
            CloseEvent(time=0.1, open_id=1, final_pos=8192),
            OpenEvent(time=1.0, open_id=2, file_id=5, user_id=2, size=8192,
                      mode=AccessMode.READ),
            CloseEvent(time=1.1, open_id=2, final_pos=8192),
            UnlinkEvent(time=5.0, file_id=5),
        ]
        result = simulate_netfs(TraceLog(name="unlink", events=events),
                                protocol="callbacks")
        assert result.consistency.get("invalidate", 0) >= 2

    def test_unknown_protocol_rejected(self, small_trace):
        with pytest.raises(ValueError, match="unknown protocol"):
            simulate_netfs(small_trace, protocol="nope")


# ---------------------------------------------------------------------------
# RPC retry / timeout behaviour
# ---------------------------------------------------------------------------


SLOW_DISK = DiskModel(name="slow", avg_seek_s=0.5, rotation_s=0.1,
                      transfer_bytes_per_s=1e5, locality=0.0)


class TestRetries:
    def test_overload_causes_drops_and_retries(self):
        result = simulate_netfs(
            _burst_trace(users=8),
            server_queue_limit=1,
            disk=SLOW_DISK,
            rpc=RpcConfig(timeout_s=0.05, max_retries=14,
                          backoff_cap_s=60.0, retry_jitter_s=0.0),
        )
        assert result.queue_drops > 0
        assert result.timeouts > 0
        assert result.retries > 0
        # Bounded backoff eventually squeezes everyone through.
        assert result.failures == 0

    def test_exhausted_retries_fail(self):
        result = simulate_netfs(
            _burst_trace(users=8),
            server_queue_limit=1,
            disk=SLOW_DISK,
            rpc=RpcConfig(timeout_s=0.01, max_retries=0,
                          retry_jitter_s=0.0),
        )
        assert result.failures > 0

    def test_uncontended_run_needs_no_retries(self, small_trace):
        result = simulate_netfs(
            small_trace,
            rpc=RpcConfig(timeout_s=60.0, max_retries=2),
        )
        assert result.retries == 0
        assert result.timeouts == 0
        assert result.failures == 0


# ---------------------------------------------------------------------------
# End-to-end simulation
# ---------------------------------------------------------------------------


class TestSimulateNetfs:
    @pytest.fixture(scope="class", params=["callbacks", "ownership"])
    def result(self, request, small_trace):
        return simulate_netfs(small_trace, protocol=request.param)

    def test_every_transfer_becomes_a_request(self, result, small_trace):
        from repro.cache.stream import Invalidation, build_stream

        transfers = [
            item for item in build_stream(small_trace)
            if not isinstance(item, Invalidation)
        ]
        assert result.requests == len(transfers)

    def test_latency_accounts_every_request(self, result):
        assert result.request_latency.count == result.requests
        assert result.request_latency.mean > 0
        assert result.request_latency.p99 >= result.request_latency.p50

    def test_utilizations_sane(self, result):
        assert 0.0 < result.ethernet_utilization < 1.0
        assert 0.0 < result.disk_utilization < 1.0

    def test_local_hits_cost_no_rpc(self, result):
        assert result.local_hits > 0
        assert result.local_hits < result.requests

    def test_render_reports_the_headline_numbers(self, result):
        text = result.render()
        assert "request latency" in text
        assert "Ethernet" in text
        assert "server disk" in text
        assert "consistency messages" in text

    def test_determinism(self, small_trace):
        first = simulate_netfs(small_trace, protocol="ownership", seed=9)
        second = simulate_netfs(small_trace, protocol="ownership", seed=9)
        assert first == second

    def test_clients_fold_users(self, small_trace):
        result = simulate_netfs(small_trace, clients=4)
        assert result.clients == 4

    def test_load_scale_multiplies_demand(self, small_trace):
        one = simulate_netfs(small_trace)
        three = simulate_netfs(small_trace, load_scale=3)
        assert three.requests == 3 * one.requests
        assert three.clients == 3 * one.clients
        assert three.ethernet_utilization > one.ethernet_utilization

    def test_bigger_client_caches_cut_rpcs(self, small_trace):
        small = simulate_netfs(small_trace, client_cache_bytes=128 * 1024)
        big = simulate_netfs(small_trace, client_cache_bytes=2 * 1024 * 1024)
        assert big.rpcs <= small.rpcs

    def test_load_scale_validation(self, small_trace):
        with pytest.raises(ValueError):
            simulate_netfs(small_trace, load_scale=0)

    def test_clients_validation(self, small_trace):
        with pytest.raises(ValueError):
            simulate_netfs(small_trace, clients=0)
