"""Tests for the zero-copy numpy views and the engine dispatch contract.

The vectorized engine's whole correctness story rests on two claims this
module pins down: the views really alias the column buffers (no copies,
native dtypes, writability inherited from the source — read-only over
``bytes`` and mmapped ``.bcorpus`` segments), and the
``auto``/``python``/``numpy`` dispatch honors the ``REPRO_NO_NUMPY``
kill switch everywhere.  The numpy-dependent classes skip cleanly on
the no-numpy CI leg.
"""

import sys
from array import array

import pytest

from repro.trace.columns import TraceColumns
from repro.trace.log import TraceLog
from repro.trace.npview import ENGINES, numpy_available, resolve_engine
from repro.trace.records import AccessMode, CloseEvent, OpenEvent

try:
    import numpy as np
except ImportError:  # pragma: no cover - the no-numpy CI leg
    np = None

needs_numpy = pytest.mark.skipif(np is None, reason="numpy not installed")


def _tiny_log() -> TraceLog:
    return TraceLog(
        name="tiny",
        events=[
            OpenEvent(time=1.0, open_id=1, file_id=10, user_id=3, size=4096,
                      mode=AccessMode.READ),
            CloseEvent(time=2.0, open_id=1, final_pos=4096),
        ],
    )


def _mutable_columns(log: TraceLog) -> TraceColumns:
    """A clone whose buffers allow item assignment (bytearray/array)."""
    cols = TraceColumns.from_log(log)
    return TraceColumns(
        name=cols.name,
        kinds=bytearray(cols.kinds),
        times=array("d", cols.times),
        open_ids=array("q", cols.open_ids),
        file_ids=array("q", cols.file_ids),
        user_ids=array("q", cols.user_ids),
        sizes=array("q", cols.sizes),
        positions=array("q", cols.positions),
        flags=bytearray(cols.flags),
    )


class TestEngineResolution:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("fortran")

    def test_python_always_resolves(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert resolve_engine("python") == "python"

    def test_kill_switch_disables_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert not numpy_available()
        assert resolve_engine("auto") == "python"

    def test_explicit_numpy_when_unavailable_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        with pytest.raises(RuntimeError, match="numpy engine requested"):
            resolve_engine("numpy")

    def test_auto_follows_availability(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
        expected = "numpy" if numpy_available() else "python"
        assert resolve_engine("auto") == expected
        assert (np is not None) == numpy_available()

    def test_engine_names_are_the_cli_choices(self):
        assert ENGINES == ("auto", "python", "numpy")


@needs_numpy
class TestZeroCopyViews:
    def test_dtypes_endianness_and_alignment(self, small_trace):
        from repro.trace.npview import column_views

        v = column_views(TraceColumns.from_log(small_trace))
        assert v.times.dtype == np.dtype("=f8") and v.times.dtype.isnative
        for name in ("open_ids", "file_ids", "user_ids", "sizes", "positions"):
            col = getattr(v, name)
            assert col.dtype == np.dtype("=i8") and col.dtype.isnative
            assert col.itemsize == 8
        for name in ("kinds", "flags"):
            col = getattr(v, name)
            assert col.dtype == np.dtype("u1") and col.itemsize == 1
        for name in v.__slots__:
            col = getattr(v, name)
            assert col.flags["C_CONTIGUOUS"] and col.flags["ALIGNED"]
        assert len(v) == len(small_trace.events)

    def test_values_round_trip_exactly(self, small_trace):
        from repro.trace.npview import column_views

        cols = TraceColumns.from_log(small_trace)
        v = column_views(cols)
        assert v.times.tolist() == list(cols.times)
        assert v.open_ids.tolist() == list(cols.open_ids)
        assert v.file_ids.tolist() == list(cols.file_ids)
        assert v.sizes.tolist() == list(cols.sizes)
        assert v.positions.tolist() == list(cols.positions)
        assert v.kinds.tolist() == list(cols.kinds)
        assert v.flags.tolist() == list(cols.flags)

    def test_views_alias_mutable_buffers_both_ways(self):
        from repro.trace.npview import column_views

        cols = _mutable_columns(_tiny_log())
        v = column_views(cols)
        cols.times[0] = 123.5  # write through the array ...
        assert v.times[0] == 123.5  # ... is visible in the view
        v.sizes[1] = 777  # write through the view ...
        assert cols.sizes[1] == 777  # ... is visible in the array
        cols.kinds[0] = 9
        assert v.kinds[0] == 9

    def test_bytes_backed_views_are_read_only(self):
        from repro.trace.npview import column_views

        v = column_views(TraceColumns.from_log(_tiny_log()))
        assert not v.kinds.flags.writeable
        assert not v.flags.flags.writeable
        with pytest.raises(ValueError):
            v.kinds[0] = 1

    def test_empty_and_single_row_views(self):
        from repro.trace.npview import column_views

        assert len(column_views(TraceColumns())) == 0
        one = TraceLog(name="one", events=[_tiny_log().events[0]])
        v = column_views(TraceColumns.from_log(one))
        assert len(v) == 1 and v.times[0] == 1.0

    def test_mmap_segment_views_match_in_ram_and_are_read_only(
        self, small_trace, tmp_path
    ):
        from repro.corpus.reader import CorpusReader
        from repro.corpus.writer import pack_columns
        from repro.trace.npview import column_views

        cols = TraceColumns.from_log(small_trace)
        path = tmp_path / "t.bcorpus"
        pack_columns(cols, path, segment_events=max(1, len(cols) // 3))
        ram = column_views(cols)
        seen = 0
        with CorpusReader(path) as reader:
            for seg in reader.iter_segments():
                v = column_views(seg)
                n = len(v)
                assert np.array_equal(v.times, ram.times[seen:seen + n])
                assert np.array_equal(v.kinds, ram.kinds[seen:seen + n])
                assert np.array_equal(v.sizes, ram.sizes[seen:seen + n])
                if sys.byteorder == "little":
                    # ACCESS_READ mmap → the zero-copy views inherit
                    # read-only (big-endian hosts get byteswapped copies).
                    assert not v.times.flags.writeable
                seen += n
        assert seen == len(cols)


@needs_numpy
class TestVectorizedKernelEdges:
    """Empty and single-event traces through every vectorized kernel."""

    @pytest.mark.parametrize("n_events", [0, 1, 2])
    def test_tiny_traces_match_python(self, monkeypatch, n_events):
        from repro.fuzz.engines import check_engines

        monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
        log = TraceLog(name="edge", events=_tiny_log().events[:n_events])
        assert check_engines(log, seed=f"edge:{n_events}") is None

    def test_empty_columns_through_each_kernel(self):
        from repro.analysis.onepass import analyze_onepass
        from repro.analysis.vectorized import (
            analyze_columns_numpy,
            pack_stream_numpy,
            validate_columns_numpy,
        )
        from repro.parallel.packed import pack_stream
        from repro.trace.validate import validate_columns

        empty = TraceColumns()
        assert analyze_columns_numpy(empty) == analyze_onepass(
            empty, engine="python"
        )
        assert validate_columns_numpy(empty) == validate_columns(
            empty, engine="python"
        )
        assert pack_stream_numpy([], 1024) == pack_stream(
            [], 1024, engine="python"
        )

    def test_fuzz_traces_match_python(self, monkeypatch):
        import random

        from repro.fuzz.engines import check_engines
        from repro.fuzz.gen import random_trace

        monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
        for i in range(3):
            log = random_trace(random.Random(f"npview:{i}"), 80)
            assert check_engines(log, seed=f"npview:{i}") is None
