"""Differential tests: the fused one-pass analyzer must be bit-identical
to the per-module reference functions it replaces.

The per-module analyses stay in the tree precisely so these tests can
compare against them; any divergence — even in the last bit of a float —
is a bug in the fast path.
"""

import pytest

from repro.analysis.accesses import iter_transfers, reconstruct_accesses
from repro.analysis.activity import analyze_activity
from repro.analysis.burstiness import analyze_burstiness
from repro.analysis.lifetimes import (
    collect_lifetimes,
    daemon_spike_fraction,
    lifetime_cdfs,
)
from repro.analysis.onepass import analyze_onepass
from repro.analysis.opentimes import open_time_cdf, open_time_summary
from repro.analysis.popularity import analyze_popularity
from repro.analysis.sequentiality import analyze_sequentiality, run_length_cdfs
from repro.analysis.sizes import file_size_cdfs, size_summary
from repro.analysis.users import per_user_summary, render_user_table
from repro.trace.columns import TraceColumns
from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
    UnlinkEvent,
)

from .conftest import make_simple_trace


def assert_matches_reference(log: TraceLog, source=None) -> None:
    """Field-for-field equality between the fused pass and the nine
    reference analyses, with no tolerance."""
    r = analyze_onepass(log if source is None else source)

    accesses = reconstruct_accesses(log)
    assert r.accesses == accesses
    assert r.transfers == list(iter_transfers(log))
    assert r.lifetimes == collect_lifetimes(log)
    assert r.activity == analyze_activity(log)
    assert r.sequentiality == analyze_sequentiality(log)
    assert (r.run_length_by_runs, r.run_length_by_bytes) == run_length_cdfs(log)
    assert r.open_times == open_time_cdf(log)
    assert (r.size_by_accesses, r.size_by_bytes) == file_size_cdfs(log)
    assert r.popularity == analyze_popularity(log)
    assert r.users == per_user_summary(log)
    assert list(r.users) == list(per_user_summary(log))  # dict insertion order
    assert r.burstiness == analyze_burstiness(log)
    assert (r.lifetime_by_files, r.lifetime_by_bytes) == lifetime_cdfs(log)
    assert r.daemon_spike == daemon_spike_fraction(collect_lifetimes(log))
    assert r.trace_name == log.name
    assert r.duration == log.duration


class TestDifferential:
    def test_generated_trace(self, small_trace):
        assert_matches_reference(small_trace)

    def test_simple_trace(self, simple_trace):
        assert_matches_reference(simple_trace)

    def test_empty_trace(self):
        assert_matches_reference(TraceLog(name="empty"))

    def test_accepts_columns_directly(self, simple_trace):
        cols = TraceColumns.from_log(simple_trace)
        assert_matches_reference(simple_trace, source=cols)

    def test_unclosed_open_is_ignored_like_reference(self):
        log = TraceLog.from_events(
            name="unclosed",
            events=[
                OpenEvent(time=0.0, open_id=1, file_id=5, user_id=1,
                          size=100, mode=AccessMode.READ),
                OpenEvent(time=0.1, open_id=2, file_id=6, user_id=2,
                          size=200, mode=AccessMode.WRITE, created=True,
                          new_file=True),
                CloseEvent(time=0.5, open_id=2, final_pos=200),
            ],
        )
        assert_matches_reference(log)

    def test_orphan_close_and_seek(self):
        log = TraceLog.from_events(
            name="orphans",
            events=[
                SeekEvent(time=0.1, open_id=99, prev_pos=0, new_pos=10),
                CloseEvent(time=0.2, open_id=98, final_pos=0),
                CreateEvent(time=0.3, file_id=7, user_id=1),
                UnlinkEvent(time=0.4, file_id=7),
            ],
        )
        assert_matches_reference(log)

    def test_truncate_and_exec(self):
        log = TraceLog.from_events(
            name="misc",
            events=[
                OpenEvent(time=0.0, open_id=1, file_id=5, user_id=3,
                          size=4096, mode=AccessMode.READ_WRITE),
                SeekEvent(time=0.2, open_id=1, prev_pos=2048, new_pos=0),
                CloseEvent(time=0.4, open_id=1, final_pos=4096),
                TruncateEvent(time=0.5, file_id=5, new_length=0),
                ExecEvent(time=0.6, file_id=8, user_id=3, size=65536),
            ],
        )
        assert_matches_reference(log)

    def test_duplicate_creating_opens(self):
        # Two creating opens for one file: the second must not reset the
        # lifetime, exactly as collect_lifetimes behaves.
        log = TraceLog.from_events(
            name="recreate",
            events=[
                OpenEvent(time=0.0, open_id=1, file_id=9, user_id=1,
                          size=0, mode=AccessMode.WRITE, created=True,
                          new_file=True),
                CloseEvent(time=0.2, open_id=1, final_pos=512),
                OpenEvent(time=1.0, open_id=2, file_id=9, user_id=1,
                          size=512, mode=AccessMode.WRITE, created=True,
                          new_file=False),
                CloseEvent(time=1.2, open_id=2, final_pos=1024),
                UnlinkEvent(time=5.0, file_id=9),
            ],
        )
        assert_matches_reference(log)

    def test_uid_zero_user(self):
        # uid 0 (root) must not be confused with "no owner".
        log = TraceLog.from_events(
            name="root-user",
            events=[
                OpenEvent(time=0.0, open_id=1, file_id=1, user_id=0,
                          size=100, mode=AccessMode.READ),
                CloseEvent(time=0.3, open_id=1, final_pos=100),
            ],
        )
        assert_matches_reference(log)

    def test_custom_windows(self, simple_trace):
        r = analyze_onepass(simple_trace, long_window=120.0,
                            short_window=5.0, burst_window=2.0)
        assert r.activity == analyze_activity(simple_trace, long_window=120.0,
                                              short_window=5.0)
        assert r.burstiness == analyze_burstiness(simple_trace, window=2.0)

    def test_bad_burst_window_rejected(self, simple_trace):
        with pytest.raises(ValueError, match="window must be positive"):
            analyze_onepass(simple_trace, burst_window=0.0)


class TestRender:
    def test_render_matches_per_module_sections(self, simple_trace):
        r = analyze_onepass(simple_trace)
        lifetimes = collect_lifetimes(simple_trace)
        dead = [lt for lt in lifetimes if lt.lifetime is not None]
        spike = daemon_spike_fraction(lifetimes)
        by_acc, by_bytes = file_size_cdfs(simple_trace)
        expected = "\n".join(
            [
                analyze_activity(simple_trace).render(),
                analyze_sequentiality(simple_trace).render(),
                open_time_summary(open_time_cdf(simple_trace)),
                size_summary(by_acc, by_bytes),
                render_user_table(per_user_summary(simple_trace)),
                analyze_burstiness(simple_trace).render(),
                f"{len(lifetimes)} new files, {len(dead)} died during the "
                f"trace; {100 * spike:.0f}% of lifetimes in the 179-181 s "
                "daemon band",
            ]
        )
        assert r.render() == expected


def test_simple_trace_spot_checks():
    """Absolute (not just differential) checks on the hand-built trace."""
    log = make_simple_trace()
    r = analyze_onepass(log)
    assert len(r.accesses) == 3
    assert len(r.lifetimes) == 1
    # born at the close of the creating open (2.4 s), unlinked at 30.0 s
    assert r.lifetimes[0].lifetime == pytest.approx(27.6)
    whole = [a for a in r.accesses if a.whole_file]
    assert len(whole) >= 1
    assert set(r.users) == {1, 2}
