"""Differential tests for :mod:`repro.parallel`.

The packed fast path and the one-pass stack simulator are only worth
having if they are *bit-identical* to the reference
:class:`~repro.cache.simulator.BlockCacheSimulator` — the sweeps swap
them in silently, so any divergence would corrupt exhibits.  These tests
pin that equivalence across policies, sizes, knobs, checkpoints and
flush anchoring, plus the executor's ordering/fallback contracts and the
CLI's ``--jobs`` plumbing.
"""

from __future__ import annotations

import pytest

from repro.cache.policies import (
    DELAYED_WRITE,
    FLUSH_5MIN,
    FLUSH_30S,
    WRITE_THROUGH,
)
from repro.cache.simulator import BlockCacheSimulator
from repro.cache.stream import Invalidation, Transfer, build_stream, cached_stream
from repro.cache.sweep import (
    PAPER_CACHE_SIZES,
    block_size_sweep,
    cache_size_policy_sweep,
    count_block_accesses,
    paging_comparison,
)
from repro.cli.main import main
from repro.parallel import executor as executor_module
from repro.parallel.executor import (
    auto_jobs,
    jobs_context,
    resolve_jobs,
    run_jobs,
)
from repro.parallel.packed import (
    cached_packed_stream,
    pack_stream,
    simulate_packed,
)
from repro.parallel.stack import simulate_stack
from repro.trace.records import UnlinkEvent

ALL_POLICIES = (WRITE_THROUGH, FLUSH_30S, FLUSH_5MIN, DELAYED_WRITE)
SIZES = (64 * 1024, 390 * 1024, 4 * 1024 * 1024)


@pytest.fixture(scope="module")
def stream(small_trace):
    return build_stream(small_trace)


@pytest.fixture(scope="module")
def packed(small_trace, stream):
    return pack_stream(stream, 4096, start_time=small_trace.start_time)


def _invalidation_heavy_stream():
    """A hand-built stream that churns files: overlapping writes, reads,
    truncations to varying points and full unlinks, so invalidations hit
    dirty blocks, clean blocks and absent blocks alike."""
    items = []
    t = 0.0
    for i in range(120):
        fid = i % 7
        end = 4096 * (1 + (i * 3) % 6)
        items.append(
            Transfer(time=t, file_id=fid, user_id=1 + i % 3,
                     start=(i % 2) * 4096, end=end, is_write=i % 3 != 2)
        )
        t += 1.0
        if i % 4 == 0:
            items.append(
                Invalidation(time=t, file_id=fid, from_byte=(i % 3) * 4096)
            )
            t += 0.5
    return items


# ---------------------------------------------------------------------------
# Packed stream construction and memoization
# ---------------------------------------------------------------------------


class TestPackedStream:
    def test_access_count_matches_reference(self, stream, packed):
        assert packed.n_accesses == count_block_accesses(stream, 4096)
        assert len(packed) >= packed.n_accesses  # invalidation rows extra

    def test_memoized_per_log_and_block_size(self, small_trace):
        a = cached_packed_stream(small_trace, 4096)
        assert cached_packed_stream(small_trace, 4096) is a
        assert cached_packed_stream(small_trace, 1024) is not a
        assert cached_packed_stream(small_trace, 4096, include_paging=True) is not a

    def test_cached_stream_identity(self, small_trace):
        assert cached_stream(small_trace) is cached_stream(small_trace)

    def test_append_invalidates_memo(self, small_trace, stream):
        import copy

        log = copy.deepcopy(small_trace)
        before = cached_packed_stream(log, 4096)
        assert cached_packed_stream(log, 4096) is before
        log.append(UnlinkEvent(time=log.events[-1].time + 1.0, file_id=1))
        after = cached_packed_stream(log, 4096)
        assert after is not before
        assert len(after) >= len(before)

    def test_in_place_replacement_invalidates_memo(self, small_trace):
        # Same length, same list object — only one element swapped for a
        # different event.  The stamp's id-sum term must catch this.
        import copy
        import dataclasses

        log = copy.deepcopy(small_trace)
        before = cached_stream(log)
        original = log.events[-1]  # keep alive so ids cannot collide
        log.events[-1] = dataclasses.replace(original)
        assert log.events[-1] is not original
        after = cached_stream(log)
        assert after is not before


# ---------------------------------------------------------------------------
# simulate_packed vs the reference simulator
# ---------------------------------------------------------------------------


class TestPackedEquivalence:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.label)
    @pytest.mark.parametrize("size", SIZES)
    def test_metrics_identical(self, small_trace, stream, packed, policy, size):
        sim = BlockCacheSimulator(cache_bytes=size, policy=policy)
        ref = sim.run(stream, flush_epoch=small_trace.start_time)
        got = simulate_packed(
            packed, size, policy, flush_epoch=packed.start_time
        )
        assert got.metrics == ref

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.label)
    def test_checkpoint_and_warm_delta(self, small_trace, stream, packed, policy):
        cp = small_trace.start_time + small_trace.duration / 2
        sim = BlockCacheSimulator(cache_bytes=390 * 1024, policy=policy)
        ref = sim.run(stream, checkpoint_time=cp,
                      flush_epoch=small_trace.start_time)
        got = simulate_packed(packed, 390 * 1024, policy,
                              checkpoint_time=cp,
                              flush_epoch=packed.start_time)
        assert got.metrics == ref
        assert got.checkpoint == sim.checkpoint
        # The warm (post-checkpoint) delta is what Figure 5 plots.
        assert (got.metrics.disk_reads - got.checkpoint.disk_reads
                == ref.disk_reads - sim.checkpoint.disk_reads)

    @pytest.mark.parametrize("kwargs", [
        dict(read_elision=False),
        dict(invalidate_on_delete=False),
        dict(replacement="fifo"),
        dict(read_elision=False, invalidate_on_delete=False,
             replacement="fifo"),
    ])
    def test_knobs_identical(self, stream, packed, kwargs):
        sim = BlockCacheSimulator(cache_bytes=128 * 1024,
                                  policy=DELAYED_WRITE, **kwargs)
        ref = sim.run(stream)
        got = simulate_packed(packed, 128 * 1024, DELAYED_WRITE, **kwargs)
        assert got.metrics == ref

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.label)
    def test_invalidation_heavy(self, policy):
        items = _invalidation_heavy_stream()
        packed = pack_stream(items, 4096)
        for size in (16 * 1024, 64 * 1024):
            sim = BlockCacheSimulator(cache_bytes=size, policy=policy)
            ref = sim.run(items)
            got = simulate_packed(packed, size, policy)
            assert got.metrics == ref
            assert got.metrics.invalidated_blocks > 0

    def test_flush_epoch_anchoring(self):
        # One dirty block at t=17, another at t=40, flush every 30 s.
        items = [
            Transfer(time=17.0, file_id=1, user_id=1, start=0, end=4096,
                     is_write=True),
            Transfer(time=40.0, file_id=2, user_id=1, start=0, end=4096,
                     is_write=True),
        ]
        packed = pack_stream(items, 4096, start_time=0.0)
        # Anchored to the trace start: a flush fires at t=30 and writes
        # the first block back.
        anchored = simulate_packed(packed, 1 << 20, FLUSH_30S, flush_epoch=0.0)
        assert anchored.metrics.disk_writes == 1
        # Legacy anchoring (first item time): first flush due at t=47,
        # after the trace ends, so nothing is written back.
        legacy = simulate_packed(packed, 1 << 20, FLUSH_30S)
        assert legacy.metrics.disk_writes == 0
        # Each matches the reference simulator under the same anchoring.
        for epoch, expected in ((0.0, anchored), (None, legacy)):
            sim = BlockCacheSimulator(cache_bytes=1 << 20, policy=FLUSH_30S)
            assert sim.run(items, flush_epoch=epoch) == expected.metrics


# ---------------------------------------------------------------------------
# The one-pass stack simulator
# ---------------------------------------------------------------------------


class TestStackCurve:
    def test_matches_reference_across_paper_sizes(self, stream, packed):
        curve = simulate_stack(packed, PAPER_CACHE_SIZES)
        for size in PAPER_CACHE_SIZES:
            sim = BlockCacheSimulator(cache_bytes=size, policy=WRITE_THROUGH)
            assert curve.metrics(size) == sim.run(stream)

    def test_checkpoints_match(self, small_trace, stream, packed):
        cp = small_trace.start_time + small_trace.duration / 2
        curve = simulate_stack(packed, PAPER_CACHE_SIZES, checkpoint_time=cp)
        for size in (PAPER_CACHE_SIZES[0], PAPER_CACHE_SIZES[-1]):
            sim = BlockCacheSimulator(cache_bytes=size, policy=WRITE_THROUGH)
            ref = sim.run(stream, checkpoint_time=cp)
            assert curve.metrics(size) == ref
            assert curve.checkpoint(size) == sim.checkpoint

    def test_invalidation_heavy(self):
        items = _invalidation_heavy_stream()
        packed = pack_stream(items, 4096)
        sizes = (8 * 1024, 16 * 1024, 64 * 1024, 1 << 20)
        curve = simulate_stack(packed, sizes)
        for size in sizes:
            sim = BlockCacheSimulator(cache_bytes=size, policy=WRITE_THROUGH)
            assert curve.metrics(size) == sim.run(items)

    def test_no_read_elision(self, stream, packed):
        curve = simulate_stack(packed, (390 * 1024,), read_elision=False)
        sim = BlockCacheSimulator(cache_bytes=390 * 1024,
                                  policy=WRITE_THROUGH, read_elision=False)
        assert curve.metrics(390 * 1024) == sim.run(stream)

    def test_rejects_stateful_write_policies(self, packed):
        for policy in (FLUSH_30S, FLUSH_5MIN, DELAYED_WRITE):
            with pytest.raises(ValueError):
                simulate_stack(packed, (64 * 1024,), policy=policy)

    def test_unknown_size_rejected(self, packed):
        curve = simulate_stack(packed, (64 * 1024,))
        with pytest.raises(KeyError):
            curve.metrics(999)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


def _scale(payload, job):
    return payload * job


def _boom(payload, job):
    raise RuntimeError("worker bug")


class TestExecutor:
    def test_serial_and_parallel_agree_in_order(self):
        jobs_list = list(range(20))
        serial = run_jobs(_scale, jobs_list, payload=3, jobs=1)
        parallel = run_jobs(_scale, jobs_list, payload=3, jobs=2)
        assert serial == parallel == [3 * j for j in jobs_list]

    def test_single_job_stays_serial(self):
        assert run_jobs(_scale, [5], payload=2, jobs=8) == [10]

    def test_resolve_jobs_validation(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        assert resolve_jobs(None) == 1  # serial without an ambient context

    def test_jobs_context_is_ambient_and_restored(self):
        with jobs_context(3):
            assert resolve_jobs(None) == 3
            with jobs_context(1):
                assert resolve_jobs(None) == 1
            assert resolve_jobs(None) == 3
        assert resolve_jobs(None) == 1

    def test_auto_jobs_bounds(self):
        assert 1 <= auto_jobs() <= executor_module.MAX_JOBS

    def test_dead_pool_falls_back_to_serial(self, monkeypatch):
        class DeadPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", DeadPool)
        jobs_list = list(range(6))
        assert run_jobs(_scale, jobs_list, payload=2, jobs=4) == [
            2 * j for j in jobs_list
        ]

    def test_worker_bug_reraises_serially(self):
        with pytest.raises(RuntimeError, match="worker bug"):
            run_jobs(_boom, [1, 2], payload=None, jobs=2)

    def test_payload_global_cleared(self):
        run_jobs(_scale, list(range(4)), payload=7, jobs=2)
        assert executor_module._payload is None


# ---------------------------------------------------------------------------
# Sweeps: parallel == serial
# ---------------------------------------------------------------------------


class TestSweepParity:
    def test_policy_sweep(self, small_trace):
        serial = cache_size_policy_sweep(small_trace, jobs=1)
        parallel = cache_size_policy_sweep(small_trace, jobs=2)
        assert serial.results == parallel.results

    def test_block_size_sweep(self, small_trace):
        serial = block_size_sweep(small_trace, jobs=1)
        parallel = block_size_sweep(small_trace, jobs=2)
        assert serial.results == parallel.results
        assert serial.no_cache == parallel.no_cache

    def test_paging_comparison(self, small_trace):
        serial = paging_comparison(small_trace, jobs=1)
        parallel = paging_comparison(small_trace, jobs=2)
        assert serial.ignored == parallel.ignored
        assert serial.simulated == parallel.simulated


# ---------------------------------------------------------------------------
# CLI --jobs plumbing
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("parallel_cli") / "a5.trace"
    rc = main(["generate", "--profile", "A5", "--hours", "0.2",
               "--seed", "3", "-o", str(path)])
    assert rc == 0
    return str(path)


class TestCLIJobs:
    def test_sweep_serial_jobs_flag(self, trace_file, capsys):
        assert main(["sweep", trace_file, "--kind", "policy",
                     "--jobs", "1"]) == 0
        assert "write-through" in capsys.readouterr().out

    def test_sweep_parallel_jobs_flag(self, trace_file, capsys):
        assert main(["sweep", trace_file, "--kind", "policy",
                     "--jobs", "2"]) == 0
        assert "write-through" in capsys.readouterr().out

    def test_experiment_jobs_flag(self, trace_file, capsys):
        assert main(["experiment", trace_file, "--id", "table6",
                     "--jobs", "1"]) == 0

    def test_rejects_nonpositive_jobs(self, trace_file, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", trace_file, "--kind", "policy", "--jobs", "0"])
