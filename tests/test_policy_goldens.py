"""Golden regression tests for the replacement-policy refactor.

The simulator core was refactored from a hard-coded LRU OrderedDict to
the pluggable :mod:`repro.cache.replacement` interface.  The numbers
below were captured from the *pre-refactor* simulator on the shared
``small_trace`` fixture (A5, seed 42, 1200 s): ``policy="lru"`` must
keep reproducing them bit for bit, forever — they are this repo's
Table VI.  The FIFO grid pins the other pre-existing policy the same
way.  A drift in any counter means the refactor changed semantics, not
just structure.
"""

from __future__ import annotations

from dataclasses import astuple

from repro.cache.policies import DELAYED_WRITE, WRITE_THROUGH
from repro.cache.simulator import simulate_cache
from repro.cache.sweep import cache_size_policy_sweep

# (cache_bytes, write-policy label) -> astuple(CacheMetrics):
# (read_accesses, write_accesses, disk_reads, disk_writes, evictions,
#  invalidated_blocks, dirty_blocks_created, dirty_blocks_discarded,
#  read_elisions)
GOLDEN = {
    (399360, "write-through"): (2738, 1661, 1503, 1661, 2113, 408, 0, 0, 1109),
    (399360, "30 sec flush"): (2738, 1661, 1503, 1089, 2113, 408, 1310, 218, 1109),
    (399360, "5 min flush"): (2738, 1661, 1503, 879, 2113, 408, 1212, 288, 1109),
    (399360, "delayed-write"): (2738, 1661, 1503, 839, 2113, 408, 1205, 321, 1109),
    (1048576, "write-through"): (2738, 1661, 1025, 1661, 1308, 539, 0, 0, 1072),
    (1048576, "30 sec flush"): (2738, 1661, 1025, 1068, 1308, 539, 1295, 224, 1072),
    (1048576, "5 min flush"): (2738, 1661, 1025, 751, 1308, 539, 1151, 355, 1072),
    (1048576, "delayed-write"): (2738, 1661, 1025, 565, 1308, 539, 1133, 413, 1072),
    (2097152, "write-through"): (2738, 1661, 784, 1661, 745, 557, 0, 0, 1024),
    (2097152, "30 sec flush"): (2738, 1661, 784, 1068, 745, 557, 1295, 224, 1024),
    (2097152, "5 min flush"): (2738, 1661, 784, 701, 745, 557, 1148, 402, 1024),
    (2097152, "delayed-write"): (2738, 1661, 784, 295, 745, 557, 1078, 473, 1024),
    (4194304, "write-through"): (2738, 1661, 654, 1661, 73, 582, 0, 0, 1019),
    (4194304, "30 sec flush"): (2738, 1661, 654, 1068, 73, 582, 1295, 224, 1019),
    (4194304, "5 min flush"): (2738, 1661, 654, 688, 73, 582, 1148, 415, 1019),
    (4194304, "delayed-write"): (2738, 1661, 654, 37, 73, 582, 1070, 503, 1019),
    (8388608, "write-through"): (2738, 1661, 652, 1661, 0, 582, 0, 0, 1019),
    (8388608, "30 sec flush"): (2738, 1661, 652, 1068, 0, 582, 1295, 224, 1019),
    (8388608, "5 min flush"): (2738, 1661, 652, 688, 0, 582, 1148, 415, 1019),
    (8388608, "delayed-write"): (2738, 1661, 652, 0, 0, 582, 1070, 503, 1019),
    (16777216, "write-through"): (2738, 1661, 652, 1661, 0, 582, 0, 0, 1019),
    (16777216, "30 sec flush"): (2738, 1661, 652, 1068, 0, 582, 1295, 224, 1019),
    (16777216, "5 min flush"): (2738, 1661, 652, 688, 0, 582, 1148, 415, 1019),
    (16777216, "delayed-write"): (2738, 1661, 652, 0, 0, 582, 1070, 503, 1019),
}

# FIFO spot checks (pre-refactor replacement="fifo" path).
FIFO_GOLDEN = {
    (399360, "write-through"): (2738, 1661, 1590, 1661, 2179, 405, 0, 0, 1085),
    (399360, "delayed-write"): (2738, 1661, 1590, 848, 2179, 405, 1202, 310, 1085),
    (2097152, "write-through"): (2738, 1661, 884, 1661, 849, 559, 0, 0, 1030),
    (2097152, "delayed-write"): (2738, 1661, 884, 291, 849, 559, 1081, 464, 1030),
}

_FIFO_POLICIES = {"write-through": WRITE_THROUGH, "delayed-write": DELAYED_WRITE}


def test_lru_sweep_matches_pre_refactor_goldens(small_trace):
    sweep = cache_size_policy_sweep(small_trace, jobs=1)
    assert sweep.replacement == "lru"
    got = {key: astuple(metrics) for key, metrics in sweep.results.items()}
    assert got == GOLDEN


def test_lru_sweep_goldens_survive_the_parallel_path(small_trace):
    sweep = cache_size_policy_sweep(small_trace, jobs=2)
    got = {key: astuple(metrics) for key, metrics in sweep.results.items()}
    assert got == GOLDEN


def test_explicit_lru_equals_default(small_trace):
    default = cache_size_policy_sweep(small_trace, jobs=1)
    explicit = cache_size_policy_sweep(small_trace, jobs=1, replacement="lru")
    assert default.results == explicit.results


def test_fifo_spot_goldens(small_trace):
    for (cache_bytes, label), expected in FIFO_GOLDEN.items():
        metrics = simulate_cache(
            small_trace,
            cache_bytes,
            policy=_FIFO_POLICIES[label],
            replacement="fifo",
        )
        assert astuple(metrics) == expected, (cache_bytes, label)
