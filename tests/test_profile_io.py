"""Tests for JSON profile load/save."""

import json

import pytest

from repro.workload.generator import generate_trace
from repro.workload.profile_io import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.workload.profiles import UCBARPA

GOOD = {
    "name": "mylab",
    "n_users": 4,
    "memory_mb": 8,
    "activity_mix": {"compile": 0.5, "shell": 0.5},
}


class TestFromDict:
    def test_minimal_profile(self):
        profile = profile_from_dict(dict(GOOD))
        assert profile.name == "mylab"
        assert profile.memory_bytes == 8 * 1024 * 1024
        assert profile.buffer_cache_bytes == 8 * 1024 * 1024 // 10
        assert dict(profile.activity_mix) == GOOD["activity_mix"]

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown profile keys"):
            profile_from_dict({**GOOD, "memroy_mb": 4})

    def test_missing_required_rejected(self):
        with pytest.raises(ValueError, match="required"):
            profile_from_dict({"name": "x"})

    def test_unknown_activity_rejected(self):
        with pytest.raises(ValueError, match="unknown activities"):
            profile_from_dict({**GOOD, "activity_mix": {"frobnicate": 1.0}})

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            profile_from_dict({**GOOD, "activity_mix": {}})

    def test_think_and_diurnal_parsed(self):
        profile = profile_from_dict({
            **GOOD,
            "think": {"burst_mean": 1.5, "idle_mean": 60.0, "idle_prob": 0.3},
            "diurnal": {"peak_hour": 10.0, "night_slowdown": 4.0},
        })
        assert profile.think.burst_mean == 1.5
        assert profile.diurnal.peak_hour == 10.0

    def test_generated_trace_from_custom_profile(self):
        profile = profile_from_dict(dict(GOOD))
        log = generate_trace(profile, seed=3, duration=300.0)
        assert len(log) > 0
        assert log.name == "mylab"


class TestRoundTrip:
    def test_builtin_round_trips(self, tmp_path):
        path = tmp_path / "a5.json"
        save_profile(UCBARPA, str(path))
        loaded = load_profile(str(path))
        assert loaded.name == UCBARPA.name
        assert loaded.n_users == UCBARPA.n_users
        assert dict(loaded.activity_mix) == dict(UCBARPA.activity_mix)
        assert loaded.think == UCBARPA.think

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "a5.json"
        save_profile(UCBARPA, str(path))
        data = json.loads(path.read_text())
        assert data["name"] == "ucbarpa"


class TestCli:
    def test_generate_with_profile_file(self, tmp_path, capsys):
        from repro.cli.main import main

        profile_path = tmp_path / "lab.json"
        profile_path.write_text(json.dumps({**GOOD, "trace_name": "L1"}))
        out = tmp_path / "lab.trace"
        rc = main(["generate", "--profile-file", str(profile_path),
                   "--hours", "0.05", "--seed", "1", "-o", str(out)])
        assert rc == 0
        assert "L1" in capsys.readouterr().out
