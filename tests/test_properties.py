"""Property-based tests (hypothesis) on the core data structures.

Invariants covered:

* both trace serializations round-trip arbitrary well-formed events;
* the CDF is a proper distribution function (monotone, bounded, consistent
  between ``percentile`` and ``fraction_at_or_below``);
* the allocator conserves space and never exceeds the device under any
  resize sequence, with waste bounded by one fragment per file;
* the cache simulator's miss ratio stays in [0, 1], a larger cache never
  does worse under pure-LRU reads, and disk reads never exceed read misses'
  upper bound;
* access reconstruction conserves bytes against the position arithmetic;
* the fuzzer's input model (``repro.fuzz.gen``) only produces valid
  traces and executable syscall sequences, and the differential oracles
  hold over its whole distribution — the same generators the fuzz
  harness drives, shared via :func:`repro.fuzz.gen.trace_strategy` /
  :func:`repro.fuzz.gen.ops_strategy` so the two never drift apart.
"""

from __future__ import annotations

import io
from array import array

from hypothesis import given, settings, strategies as st

from repro.analysis.accesses import reconstruct_accesses
from repro.analysis.cdf import Cdf
from repro.fuzz.gen import ops_strategy, trace_strategy
from repro.cache.policies import DELAYED_WRITE
from repro.cache.replacement import REPLACEMENT_NAMES
from repro.cache.simulator import BlockCacheSimulator
from repro.cache.stream import build_stream
from repro.parallel.packed import (
    OP_READ,
    PackedStream,
    pack_stream,
    simulate_packed,
)
from repro.trace.io_binary import read_binary, write_binary
from repro.trace.io_text import format_event, parse_event_line
from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
    UnlinkEvent,
)
from repro.trace.stats import total_bytes_transferred
from repro.unixfs.allocator import BlockAllocator, Extent
from repro.unixfs.errors import ENOSPC
from repro.unixfs.geometry import Geometry

# --- strategies -------------------------------------------------------------

times = st.integers(min_value=0, max_value=10_000_000).map(lambda cs: cs / 100.0)
ids = st.integers(min_value=0, max_value=2**31 - 1)
uids = st.integers(min_value=0, max_value=60_000)
sizes = st.integers(min_value=0, max_value=2**40)
modes = st.sampled_from(list(AccessMode))


@st.composite
def open_events(draw):
    size = draw(sizes)
    return OpenEvent(
        time=draw(times),
        open_id=draw(ids),
        file_id=draw(ids),
        user_id=draw(uids),
        size=size,
        mode=draw(modes),
        created=draw(st.booleans()),
        new_file=draw(st.booleans()),
        initial_pos=draw(st.integers(min_value=0, max_value=size)),
    )


events = st.one_of(
    open_events(),
    st.builds(CloseEvent, time=times, open_id=ids, final_pos=sizes),
    st.builds(SeekEvent, time=times, open_id=ids, prev_pos=sizes, new_pos=sizes),
    st.builds(UnlinkEvent, time=times, file_id=ids),
    st.builds(TruncateEvent, time=times, file_id=ids, new_length=sizes),
    st.builds(ExecEvent, time=times, file_id=ids, user_id=uids, size=sizes),
)


class TestSerializationRoundTrips:
    @given(events)
    def test_text_round_trip(self, event):
        assert parse_event_line(format_event(event)) == event

    @given(st.lists(events, max_size=40))
    @settings(max_examples=50)
    def test_binary_round_trip(self, event_list):
        log = TraceLog.from_events(event_list)
        buf = io.BytesIO()
        write_binary(log, buf)
        buf.seek(0)
        assert read_binary(buf).events == log.events


class TestCdfProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=100))
    def test_monotone_and_bounded(self, values):
        cdf = Cdf.from_samples(values)
        grid = sorted({0.0, min(values), max(values), max(values) * 2})
        fracs = [cdf.fraction_at_or_below(x) for x in grid]
        assert fracs == sorted(fracs)
        assert all(0.0 <= f <= 1.0 for f in fracs)
        assert cdf.fraction_at_or_below(max(values)) == 1.0

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_percentile_consistent_with_fraction(self, values, p):
        cdf = Cdf.from_samples(values)
        x = cdf.percentile(p)
        assert cdf.fraction_at_or_below(x) >= p - 1e-9


class TestAllocatorProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200_000), max_size=40))
    @settings(max_examples=60)
    def test_resize_sequence_conserves_space(self, sequence):
        geometry = Geometry(block_size=4096, frag_size=1024,
                            total_bytes=128 * 4096)
        alloc = BlockAllocator(geometry)
        extent = Extent()
        last_ok = 0
        for size in sequence:
            try:
                alloc.resize(extent, size)
                last_ok = size
            except ENOSPC:
                pass  # resize rolls back; the old size still holds
            held = geometry.allocated_bytes(last_ok)
            assert alloc.allocated_bytes == held
            assert 0 <= alloc.free_bytes <= geometry.total_bytes
        alloc.release(extent)
        assert alloc.allocated_bytes == 0


@st.composite
def access_traces(draw):
    """Well-formed single-user traces: opens with matched seeks/closes."""
    trace_events = []
    t = 0.0
    for open_id in range(draw(st.integers(min_value=1, max_value=8))):
        size = draw(st.integers(min_value=0, max_value=200_000))
        mode = draw(modes)
        trace_events.append(
            OpenEvent(time=t, open_id=open_id, file_id=draw(st.integers(0, 5)),
                      user_id=1, size=size, mode=mode,
                      created=mode is not AccessMode.READ and draw(st.booleans()))
        )
        pos = 0
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            t += 0.25
            advance = draw(st.integers(min_value=0, max_value=65_536))
            new_pos = draw(st.integers(min_value=0, max_value=200_000))
            trace_events.append(
                SeekEvent(time=t, open_id=open_id, prev_pos=pos + advance,
                          new_pos=new_pos)
            )
            pos = new_pos
        t += 0.25
        advance = draw(st.integers(min_value=0, max_value=65_536))
        trace_events.append(
            CloseEvent(time=t, open_id=open_id, final_pos=pos + advance)
        )
        t += 0.25
    return TraceLog.from_events(trace_events)


class TestReconstructionProperties:
    @given(access_traces())
    @settings(max_examples=60)
    def test_bytes_conserved(self, log):
        accesses = reconstruct_accesses(log)
        assert sum(a.bytes_transferred for a in accesses) == (
            total_bytes_transferred(log)
        )

    @given(access_traces())
    @settings(max_examples=60)
    def test_runs_are_positive_and_ordered_within_access(self, log):
        for access in reconstruct_accesses(log):
            for run in access.runs:
                assert run.length > 0
            times = [run.time for run in access.runs]
            assert times == sorted(times)


class TestCacheSimProperties:
    @given(access_traces(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40)
    def test_miss_ratio_bounded(self, log, cache_blocks):
        sim = BlockCacheSimulator(
            cache_bytes=cache_blocks * 4096, block_size=4096,
            policy=DELAYED_WRITE,
        )
        metrics = sim.run(build_stream(log))
        assert 0.0 <= metrics.miss_ratio <= 2.0  # writes can add I/Os
        assert metrics.disk_reads <= metrics.block_accesses
        assert metrics.read_accesses + metrics.write_accesses == (
            metrics.block_accesses
        )

    @given(access_traces())
    @settings(max_examples=40)
    def test_larger_cache_never_more_disk_reads(self, log):
        stream = build_stream(log)
        small = BlockCacheSimulator(cache_bytes=2 * 4096, block_size=4096)
        big = BlockCacheSimulator(cache_bytes=256 * 4096, block_size=4096)
        m_small = small.run(stream)
        m_big = big.run(stream)
        # LRU inclusion property: a larger LRU cache contains the smaller's
        # contents, so it cannot read more from disk.
        assert m_big.disk_reads <= m_small.disk_reads


class _ReferenceLru:
    """An obviously correct LRU used to cross-check BufferCache."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.order: list[tuple[int, int]] = []  # LRU first

    def access(self, key: tuple[int, int]) -> bool:
        hit = key in self.order
        if hit:
            self.order.remove(key)
        self.order.append(key)
        while len(self.order) > self.capacity:
            self.order.pop(0)
        return hit


@st.composite
def buffer_ops(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=120))):
        kind = draw(st.sampled_from(["read", "write", "invalidate"]))
        fid = draw(st.integers(min_value=1, max_value=5))
        if kind == "invalidate":
            ops.append(("invalidate", fid, draw(st.integers(0, 3))))
        else:
            block = draw(st.integers(min_value=0, max_value=7))
            ops.append((kind, fid, block))
    return ops


class TestBufferCacheModel:
    @given(buffer_ops(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=80)
    def test_matches_reference_lru(self, ops, capacity):
        from repro.unixfs.buffercache import BufferCache

        cache = BufferCache(capacity_bytes=capacity * 4096, block_size=4096)
        model = _ReferenceLru(capacity)
        for op in ops:
            if op[0] == "invalidate":
                _kind, fid, from_block = op
                cache.invalidate_file(fid, from_block=from_block)
                model.order = [
                    k for k in model.order
                    if not (k[0] == fid and k[1] >= from_block)
                ]
            else:
                kind, fid, block = op
                expected_hit = model.access((fid, block))
                before = cache.stats.read_hits + cache.stats.write_hits
                cache.access(fid, block * 4096, 4096, write=kind == "write")
                after = cache.stats.read_hits + cache.stats.write_hits
                assert (after - before == 1) == expected_hit
        assert len(cache) == len(model.order)


class TestTraceOpsProperties:
    @given(access_traces(), access_traces())
    @settings(max_examples=30)
    def test_merge_validates_and_preserves_counts(self, a, b):
        from repro.trace.ops import merge
        from repro.trace.validate import validate

        merged = merge([a, b])
        assert len(merged) == len(a) + len(b)
        assert validate(merged).ok

    @given(access_traces())
    @settings(max_examples=30)
    def test_filter_users_is_a_valid_subset(self, log):
        from repro.trace.ops import filter_users
        from repro.trace.validate import validate

        users = sorted(log.user_ids())
        if not users:
            return
        out = filter_users(log, users[:1])
        assert len(out) <= len(log)
        assert validate(out).ok

    @given(access_traces())
    @settings(max_examples=30)
    def test_renumber_preserves_structure(self, log):
        from repro.trace.ops import renumber_opens
        from repro.trace.stats import total_bytes_transferred

        out = renumber_opens(log, open_id_base=1000)
        assert len(out) == len(log)
        assert total_bytes_transferred(out) == total_bytes_transferred(log)


class TestFuzzInputModel:
    """The fuzz harness's generators, driven as hypothesis properties."""

    @given(trace_strategy(max_events=60))
    @settings(max_examples=40, deadline=None)
    def test_generated_traces_validate_and_round_trip(self, log):
        from repro.trace.io_binary import read_binary_columns
        from repro.trace.validate import validate

        assert validate(log).ok
        buf = io.BytesIO()
        write_binary(log, buf)
        buf.seek(0)
        assert read_binary(buf).events == log.events
        buf.seek(0)
        assert read_binary_columns(buf).to_log().events == log.events

    @given(trace_strategy(max_events=60))
    @settings(max_examples=25, deadline=None)
    def test_oracles_hold_over_the_generator_distribution(self, log):
        from repro.fuzz.oracles import check_all

        assert check_all(log) is None

    @given(ops_strategy(max_ops=40))
    @settings(max_examples=25, deadline=None)
    def test_generated_ops_execute_cleanly(self, ops):
        from repro.fuzz.gen import apply_ops
        from repro.fuzz.runner import _check_ops

        # The shadow model guarantees validity on a fresh file system.
        assert apply_ops(ops).skipped == 0
        # The full pillar-1 oracle (replay + validate + fsck + differentials).
        assert _check_ops(ops) is None


# --- the replacement-policy zoo ---------------------------------------------

#: The classic Belady sequence: FIFO takes 9 faults at 3 frames but 10
#: at 4 (the anomaly); any stack algorithm is monotone on it.
_BELADY_PAGES = (1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5)


def _read_only_stream(pages) -> PackedStream:
    return PackedStream(
        block_size=4096,
        start_time=0.0,
        ops=bytes([OP_READ]) * len(pages),
        keys=array("q", pages),
        times=array("d", [float(i) for i in range(len(pages))]),
        n_accesses=len(pages),
    )


class TestPolicyZooProperties:
    @given(access_traces(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=15, deadline=None)
    def test_access_conservation_under_every_policy(self, log, cache_blocks):
        packed = pack_stream(build_stream(log), 4096, start_time=log.start_time)
        for name in REPLACEMENT_NAMES:
            metrics = simulate_packed(
                packed, cache_blocks * 4096, DELAYED_WRITE, replacement=name
            ).metrics
            # Every block access is billed exactly once, as a read or a
            # write, no matter who picks the victims.
            assert (
                metrics.read_accesses + metrics.write_accesses
                == packed.n_accesses
            )
            assert metrics.disk_reads + metrics.read_elisions <= (
                metrics.block_accesses
            )

    @given(access_traces())
    @settings(max_examples=15, deadline=None)
    def test_unbounded_cache_sees_only_cold_misses(self, log):
        packed = pack_stream(build_stream(log), 4096, start_time=log.start_time)
        runs = {
            name: simulate_packed(
                packed, 1 << 40, DELAYED_WRITE, replacement=name
            ).metrics
            for name in REPLACEMENT_NAMES
        }
        baseline = runs["lru"]
        assert baseline.evictions == 0
        for name, metrics in runs.items():
            # A cache nothing is ever evicted from misses each block
            # once; the replacement policy never gets to act, so every
            # policy must report the same numbers.
            assert metrics == baseline, name

    @given(access_traces())
    @settings(max_examples=15, deadline=None)
    def test_stack_policies_have_the_inclusion_property(self, log):
        packed = pack_stream(build_stream(log), 4096, start_time=log.start_time)
        for name in ("lru", "lfu"):
            misses = [
                (lambda m: m.disk_reads + m.read_elisions)(
                    simulate_packed(
                        packed, blocks * 4096, DELAYED_WRITE, replacement=name
                    ).metrics
                )
                for blocks in (2, 8, 64, 256)
            ]
            # Stack algorithms: the bigger cache's contents include the
            # smaller's, so misses never increase with capacity.
            assert misses == sorted(misses, reverse=True), name

    def test_battery_detects_belady_anomaly_in_fifo(self):
        stream = _read_only_stream(_BELADY_PAGES)

        def faults(name: str, frames: int) -> int:
            return simulate_packed(
                stream, frames * 4096, DELAYED_WRITE, replacement=name
            ).metrics.disk_reads

        # FIFO is not a stack algorithm: the constructed sequence must
        # show *more* faults with *more* memory, and the battery's
        # monotonicity check is exactly what flags it.
        assert faults("fifo", 3) == 9
        assert faults("fifo", 4) == 10
        assert faults("fifo", 4) > faults("fifo", 3)
        # LRU on the same sequence stays monotone (inclusion property).
        assert faults("lru", 4) <= faults("lru", 3)
