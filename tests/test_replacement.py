"""Unit tests for the replacement-policy zoo (repro.cache.replacement).

Each policy gets a scripted scenario pinning its defining behavior
(second chance, aging, ghost promotion, adaptivity, arm switching);
the integration half replays the shared ``small_trace`` through the
full simulator and the packed replayer for every policy and demands
bit-identical metrics — the same contract fuzz pillar 6 checks on
generated traces.
"""

from __future__ import annotations

import pytest

from repro.cache.policies import DELAYED_WRITE, FLUSH_30S, WRITE_THROUGH
from repro.cache.replacement import (
    REPLACEMENT_NAMES,
    REPLACEMENT_POLICIES,
    ArcPolicy,
    ClockPolicy,
    EnsemblePolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    TwoQPolicy,
    current_replacement,
    make_replacement,
    replacement_context,
    validate_replacement,
)
from repro.cache.simulator import BlockCacheSimulator
from repro.cache.stream import cached_stream
from repro.parallel.packed import cached_packed_stream, simulate_packed


def _fill(policy, keys):
    for key in keys:
        policy.insert(key)


class TestRegistry:
    def test_names_and_classes_agree(self):
        assert REPLACEMENT_NAMES == ("lru", "fifo", "clock", "lfu", "2q",
                                     "arc", "ensemble")
        for name, cls in REPLACEMENT_POLICIES.items():
            assert cls.name == name
            assert isinstance(make_replacement(name, 8), cls)

    def test_validate_rejects_unknown(self):
        assert validate_replacement("arc") == "arc"
        with pytest.raises(ValueError, match="ensemble"):
            validate_replacement("belady")

    def test_simulator_rejects_unknown(self):
        with pytest.raises(ValueError):
            BlockCacheSimulator(8 * 4096, replacement="belady")

    def test_ambient_context(self):
        assert current_replacement() == "lru"
        with replacement_context("2q"):
            assert current_replacement() == "2q"
            with replacement_context("arc"):
                assert current_replacement() == "arc"
            assert current_replacement() == "2q"
        assert current_replacement() == "lru"
        with pytest.raises(ValueError):
            with replacement_context("nope"):
                pass


class TestLru:
    def test_recency_order(self):
        p = LruPolicy(3)
        _fill(p, "abc")
        p.touch("a")
        assert p.victim() == "b"
        p.remove("b", evicted=True)
        assert p.victim() == "c"


class TestFifo:
    def test_touch_never_reorders(self):
        p = FifoPolicy(3)
        _fill(p, "abc")
        p.touch("a")
        p.touch("a")
        assert p.victim() == "a"


class TestClock:
    def test_second_chance(self):
        p = ClockPolicy(3)
        _fill(p, "abc")
        # Every bit is set, so the hand sweeps a full rotation (clearing
        # a, b, c) and lands back on the oldest: FIFO when all are hot.
        assert p.victim() == "a"
        p.remove("a", evicted=True)
        # b and c now have clear bits; a touch spares b one rotation.
        p.touch("b")
        assert p.victim() == "c"


class TestLfu:
    def test_evicts_least_frequent(self):
        p = LfuPolicy(3)
        _fill(p, "abc")
        p.touch("a")
        p.touch("a")
        p.touch("c")
        assert p.victim() == "b"

    def test_counts_survive_eviction(self):
        p = LfuPolicy(2)
        p.insert("a")
        p.touch("a")
        p.touch("a")
        p.insert("b")
        p.remove("b", evicted=True)
        # b's count (1) persisted; back in the cache it is still colder
        # than thrice-seen a.
        p.insert("b")
        assert p.victim() == "b"


class TestTwoQ:
    def test_ghost_hit_promotes_to_am(self):
        p = TwoQPolicy(4)  # kin=1, kout=2
        _fill(p, "abc")  # all in A1in, over kin
        assert p.victim() == "a"
        p.remove("a", evicted=True)  # a becomes an A1out ghost
        p.insert("a")  # ghost hit: straight to Am
        p.touch("a")
        # A1in (b, c) still exceeds kin, so probation drains first.
        assert p.victim() == "b"
        p.remove("b", evicted=True)
        p.remove("c", evicted=True)
        # Only Am remains: a is the main-queue LRU now.
        assert p.victim() == "a"

    def test_invalidation_leaves_no_ghost(self):
        p = TwoQPolicy(8)
        p.insert("a")
        p.remove("a")  # evicted=False: invalidated, not ejected
        p.insert("a")
        # No ghost was kept, so this is a first-timer again (A1in, and
        # with Am empty it is the next victim).
        assert p.victim() == "a"


class TestArc:
    def test_b1_ghost_hit_grows_p(self):
        p = ArcPolicy(2)
        p.insert("a")
        p.touch("a")  # a proves reuse: T2
        p.insert("b")  # T1 = [b], T2 = [a]
        p.insert("c")  # complete miss; REPLACE must run
        victim = p.victim()
        assert victim == "b"  # |T1| > p: recency side pays
        p.remove(victim, evicted=True)  # b ghosts into B1
        assert p._p == 0
        p.insert("b")  # B1 ghost hit
        assert p._p == 1  # recency target grew
        assert "b" in p._t2  # and the block came back as "seen twice"

    def test_full_t1_without_ghosts_ejects_directly(self):
        p = ArcPolicy(2)
        _fill(p, ["a", "b", "c"])  # |T1| hits c with B1 empty
        victim = p.victim()
        assert victim == "a"
        p.remove(victim, evicted=True)
        # The paper's Case A: ejected outright, no B1 ghost.
        assert "a" not in p._b1

    def test_frequency_hits_move_to_t2(self):
        p = ArcPolicy(4)
        _fill(p, ["a", "b"])
        p.touch("a")
        assert "a" in p._t2 and "b" in p._t1

    def test_directory_stays_bounded(self):
        p = ArcPolicy(4)
        for i in range(64):
            key = f"k{i}"
            p.insert(key)
            while len(p._t1) + len(p._t2) > 4:
                p.remove(p.victim(), evicted=True)
        assert len(p._t1) + len(p._b1) <= 4
        assert len(p._t1) + len(p._t2) + len(p._b1) + len(p._b2) <= 8


class TestEnsemble:
    def test_deterministic_replay(self):
        def drive():
            p = EnsemblePolicy(4)
            victims = []
            resident = set()
            for i in range(3000):
                key = (i * 7) % 11
                if key in resident:
                    p.touch(key)
                else:
                    resident.add(key)
                    p.insert(key)
                    if len(resident) > 4:
                        v = p.victim()
                        resident.discard(v)
                        p.remove(v, evicted=True)
                victims.append(p.victim() if resident else None)
            return victims

        assert drive() == drive()

    def test_arms_track_membership(self):
        p = EnsemblePolicy(4)
        _fill(p, range(4))
        p.remove(2)
        for arm in p._arms:
            # Every arm must agree on residency, whichever is active.
            assert arm.victim() in (0, 1, 3)


@pytest.mark.parametrize("name", REPLACEMENT_NAMES)
@pytest.mark.parametrize(
    "write_policy", [WRITE_THROUGH, FLUSH_30S, DELAYED_WRITE],
    ids=lambda p: p.label,
)
def test_packed_replay_matches_full_simulator(small_trace, name, write_policy):
    stream = cached_stream(small_trace)
    packed = cached_packed_stream(small_trace, 4096)
    checkpoint = small_trace.start_time + 600.0
    for cache_bytes in (399360, 2 * 1024 * 1024):
        sim = BlockCacheSimulator(
            cache_bytes, 4096, write_policy, replacement=name
        )
        sim.run(
            stream,
            checkpoint_time=checkpoint,
            flush_epoch=small_trace.start_time,
        )
        run = simulate_packed(
            packed,
            cache_bytes,
            write_policy,
            replacement=name,
            checkpoint_time=checkpoint,
            flush_epoch=small_trace.start_time,
        )
        assert run.metrics == sim.metrics
        assert run.checkpoint == sim.checkpoint


def test_policies_actually_differ(small_trace):
    """The zoo is not seven spellings of LRU: the small cache separates
    at least recency (lru) from pure insertion order (fifo)."""
    packed = cached_packed_stream(small_trace, 4096)
    reads = {
        name: simulate_packed(
            packed, 399360, DELAYED_WRITE, replacement=name
        ).metrics.disk_reads
        for name in REPLACEMENT_NAMES
    }
    assert reads["lru"] != reads["fifo"]
    assert len(set(reads.values())) >= 3
