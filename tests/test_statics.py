"""Tests for repro.statics — the AST-based invariant linter.

Every rule gets both true-positive fixtures (the violation fires) and
false-positive traps (the idiomatic fix does not).  Fixture files are
written under a ``repro/<pkg>/`` directory inside tmp_path so
:func:`module_name_for` maps them into the scoped packages the rules
guard; files written at the tmp root land outside every scope.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.cli.main import main
from repro.statics import (
    check_corpus_schema,
    check_trace_schema,
    collect_files,
    config,
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    rule_catalog,
    write_baseline,
)
from repro.statics.context import ModuleContext, module_name_for

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
TRACE_DIR = REPO_SRC / "repro" / "trace"


def _write(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def _lint_source(tmp_path: Path, relpath: str, source: str):
    return lint_paths([_write(tmp_path, relpath, source)])


def _rule_ids(report) -> list[str]:
    return [f.rule_id for f in report.findings]


# -- context / scoping ------------------------------------------------------


def test_module_name_anchored_at_repro(tmp_path):
    path = _write(tmp_path, "repro/cache/mod.py", "x = 1\n")
    assert module_name_for(path) == "repro.cache.mod"
    init = _write(tmp_path, "repro/cache/__init__.py", "")
    assert module_name_for(init) == "repro.cache"
    outside = _write(tmp_path, "helper.py", "x = 1\n")
    assert module_name_for(outside) == "helper"


def test_import_alias_resolution(tmp_path):
    ctx = ModuleContext(
        tmp_path / "m.py",
        "import random as rnd\nfrom time import time as now\n",
    )
    import ast

    assert ctx.resolve(ast.parse("rnd.random", mode="eval").body) == (
        "random.random"
    )
    assert ctx.resolve(ast.parse("now", mode="eval").body) == "time.time"
    # Chains rooted at runtime values do not resolve.
    assert ctx.resolve(ast.parse("self.rng.random", mode="eval").body) is None


def test_collect_files_skips_pycache_and_dedupes(tmp_path):
    _write(tmp_path, "pkg/a.py", "x = 1\n")
    _write(tmp_path, "pkg/__pycache__/a.py", "x = 1\n")
    files = collect_files([tmp_path, tmp_path / "pkg" / "a.py"])
    assert [f.name for f in files] == ["a.py"]


def test_rule_catalog_covers_documented_ids():
    ids = {rule_id for rule_id, _severity, _title in rule_catalog()}
    assert {
        "REP-D001",
        "REP-D002",
        "REP-D003",
        "REP-P001",
        "REP-P002",
        "REP-H001",
        "REP-H002",
        "REP-H003",
        "REP-S001",
        "REP-S002",
        "REP-A000",
    } <= ids


# -- REP-D001: wall clock ---------------------------------------------------


def test_wall_clock_flagged_in_scope(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/clocky.py",
        "import time\n\ndef f():\n    return time.time()\n",
    )
    assert _rule_ids(report) == ["REP-D001"]
    assert "repro.clock" in report.findings[0].message


def test_wall_clock_alias_and_from_import_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/netfs/clocky.py",
        "import time as t\nfrom datetime import datetime\n"
        "a = t.monotonic()\nb = datetime.now()\n",
    )
    assert _rule_ids(report) == ["REP-D001", "REP-D001"]


def test_wall_clock_ignored_outside_scope(tmp_path):
    report = _lint_source(
        tmp_path, "bench.py", "import time\nstart = time.time()\n"
    )
    assert report.ok


# -- REP-D002: unseeded randomness ------------------------------------------


def test_module_level_random_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/workload/rand.py",
        "import random\nx = random.random()\n",
    )
    assert _rule_ids(report) == ["REP-D002"]


def test_unseeded_random_instance_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/workload/rand.py",
        "import random\nrng = random.Random()\n",
    )
    assert _rule_ids(report) == ["REP-D002"]


def test_seeded_random_instance_is_not_flagged(tmp_path):
    # The canonical false-positive trap: the *fix* must lint clean.
    report = _lint_source(
        tmp_path,
        "repro/workload/rand.py",
        "import random\nrng = random.Random(42)\nx = rng.random()\n",
    )
    assert report.ok


def test_system_random_always_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/rand.py",
        "import random\nrng = random.SystemRandom()\n",
    )
    assert _rule_ids(report) == ["REP-D002"]
    assert "never be" in report.findings[0].message


# -- REP-D003: hash-order iteration -----------------------------------------


def test_for_over_set_literal_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/parallel/iter.py",
        "for x in {1, 2, 3}:\n    print(x)\n",
    )
    assert _rule_ids(report) == ["REP-D003"]


def test_for_over_inferred_set_name_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/trace/iter.py",
        "def f(live: set):\n    out = []\n"
        "    for k in live:\n        out.append(k)\n    return out\n",
    )
    assert _rule_ids(report) == ["REP-D003"]


def test_comprehension_over_set_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/iter.py",
        "s = {1, 2}\ndoomed = [k for k in s if k > 1]\n",
    )
    assert _rule_ids(report) == ["REP-D003"]


def test_sorted_wrapped_set_iteration_is_not_flagged(tmp_path):
    # The idiomatic fix — sorted(...) around the comprehension — and a
    # set comprehension (orderless result) must both pass.
    report = _lint_source(
        tmp_path,
        "repro/cache/iter.py",
        "s = {1, 2}\n"
        "doomed = sorted(k for k in s if k > 1)\n"
        "total = sum(k for k in s)\n"
        "alive = {k for k in s if k > 0}\n",
    )
    assert report.ok


def test_bare_popitem_flagged_but_directed_popitem_passes(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/unixfs/lru.py",
        "from collections import OrderedDict\n"
        "d = OrderedDict()\n"
        "def evict():\n    return d.popitem(last=False)\n"
        "def bad():\n    return d.popitem()\n",
    )
    assert _rule_ids(report) == ["REP-D003"]
    assert report.findings[0].line == 6


def test_set_iteration_ignored_outside_order_pinned_scope(tmp_path):
    report = _lint_source(
        tmp_path, "script.py", "for x in {1, 2}:\n    print(x)\n"
    )
    assert report.ok


# -- REP-P001: unpicklable workers ------------------------------------------


def test_lambda_worker_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cli/sweepy.py",
        "from repro.parallel.executor import run_jobs\n"
        "results = run_jobs(lambda job, payload: job, [1], None)\n",
    )
    assert _rule_ids(report) == ["REP-P001"]
    assert "lambda" in report.findings[0].message


def test_nested_function_worker_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cli/sweepy.py",
        "from repro.parallel.executor import run_jobs\n"
        "def sweep(jobs):\n"
        "    def work(job, payload):\n        return job\n"
        "    return run_jobs(work, jobs, None)\n",
    )
    assert _rule_ids(report) == ["REP-P001"]
    assert "closure" in report.findings[0].message


def test_bound_method_worker_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cli/sweepy.py",
        "from repro.parallel import executor\n"
        "class Sweep:\n"
        "    def work(self, job, payload):\n        return job\n"
        "    def run(self, jobs):\n"
        "        return executor.run_jobs(self.work, jobs, None)\n",
    )
    assert _rule_ids(report) == ["REP-P001"]
    assert "bound method" in report.findings[0].message


def test_module_level_worker_passes(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cli/sweepy.py",
        "from repro.parallel.executor import run_jobs\n"
        "def work(job, payload):\n    return job\n"
        "def sweep(jobs):\n    return run_jobs(work, jobs, None)\n",
    )
    assert report.ok


def test_partial_over_lambda_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cli/sweepy.py",
        "import functools\n"
        "from repro.parallel.executor import run_jobs\n"
        "r = run_jobs(functools.partial(lambda j, p: j), [1], None)\n",
    )
    assert _rule_ids(report) == ["REP-P001"]


# -- REP-P002: worker global mutation ---------------------------------------


def test_worker_assigning_global_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cli/sweepy.py",
        "from repro.parallel.executor import run_jobs\n"
        "TOTAL = 0\n"
        "def work(job, payload):\n"
        "    global TOTAL\n    TOTAL = TOTAL + job\n    return job\n"
        "r = run_jobs(work, [1], None)\n",
    )
    assert _rule_ids(report) == ["REP-P002"]


def test_worker_mutating_module_container_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cli/sweepy.py",
        "from repro.parallel.executor import run_jobs\n"
        "RESULTS = []\n"
        "def work(job, payload):\n    RESULTS.append(job)\n    return job\n"
        "r = run_jobs(work, [1], None)\n",
    )
    assert _rule_ids(report) == ["REP-P002"]


def test_worker_returning_results_passes(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cli/sweepy.py",
        "from repro.parallel.executor import run_jobs\n"
        "def work(job, payload):\n    local = []\n"
        "    local.append(job)\n    return local\n"
        "r = run_jobs(work, [1], None)\n",
    )
    assert report.ok


# -- REP-H001 / REP-H002: hot-path hygiene ----------------------------------


@pytest.fixture
def hot_fixture_module(monkeypatch):
    monkeypatch.setattr(
        config, "HOT_MODULES", config.HOT_MODULES + ("repro.cache.hotfix",)
    )
    return "repro/cache/hotfix.py"


def test_hot_class_without_slots_warned(tmp_path, hot_fixture_module):
    report = _lint_source(
        tmp_path,
        hot_fixture_module,
        "class Entry:\n    def __init__(self):\n        self.x = 1\n",
    )
    assert _rule_ids(report) == ["REP-H001"]
    assert report.findings[0].severity.value == "warning"


def test_slots_and_slotted_dataclass_pass(tmp_path, hot_fixture_module):
    report = _lint_source(
        tmp_path,
        hot_fixture_module,
        "from dataclasses import dataclass\n"
        "class Entry:\n    __slots__ = ('x',)\n"
        "@dataclass(frozen=True, slots=True)\n"
        "class Row:\n    x: int\n"
        "class BadTrace(ValueError):\n    pass\n",
    )
    assert report.ok


def test_float_equality_flagged_in_simulator_code(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/netfs/srv.py",
        "def due(t):\n    return t == 1.5\n",
    )
    assert _rule_ids(report) == ["REP-H002"]


def test_int_equality_and_out_of_scope_float_pass(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/netfs/srv.py",
        "def due(t):\n    return t == 1\n",
    )
    assert report.ok
    report = _lint_source(
        tmp_path, "plot.py", "ok = 0.5 == x\n" "x = 1.0\n"
    )
    assert report.ok


# -- suppressions and REP-A000 ----------------------------------------------


def test_same_line_suppression_with_justification(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/clocky.py",
        "import time\n"
        "t0 = time.time()  # repro: allow[REP-D001] -- progress logging only\n",
    )
    assert report.ok
    assert report.suppressed_count == 1
    assert report.suppressed[0].rule_id == "REP-D001"
    assert "progress logging" in report.suppressed[0].suppressed_by


def test_preceding_line_suppression(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/clocky.py",
        "import time\n"
        "# repro: allow[REP-D001] -- wall time reported to the user\n"
        "t0 = time.time()\n",
    )
    assert report.ok
    assert report.suppressed_count == 1


def test_suppression_without_justification_is_an_error(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/clocky.py",
        "import time\nt0 = time.time()  # repro: allow[REP-D001]\n",
    )
    assert "REP-A000" in _rule_ids(report)


def test_suppression_naming_unknown_rule_is_an_error(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/clocky.py",
        "x = 1  # repro: allow[REP-X999] -- does not exist\n",
    )
    assert _rule_ids(report) == ["REP-A000"]
    assert "REP-X999" in report.findings[0].message


def test_suppression_for_other_rule_does_not_mask(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/clocky.py",
        "import time\n"
        "t0 = time.time()  # repro: allow[REP-D002] -- wrong rule id\n",
    )
    assert "REP-D001" in _rule_ids(report)


# -- baseline ---------------------------------------------------------------


def test_baseline_round_trip_and_grandfathering(tmp_path):
    fixture = _write(
        tmp_path,
        "repro/cache/clocky.py",
        "import time\nt0 = time.time()\n",
    )
    first = lint_paths([fixture])
    assert not first.ok

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.findings)
    fingerprints = load_baseline(baseline_path)
    assert fingerprints == {f.fingerprint for f in first.findings}

    second = lint_paths([fixture], baseline=fingerprints)
    assert second.ok
    assert second.baselined_count == 1

    # A *new* finding still fails against the old baseline.
    fixture.write_text(
        "import time\nt0 = time.time()\nt1 = time.monotonic()\n",
        encoding="utf-8",
    )
    third = lint_paths([fixture], baseline=fingerprints)
    assert not third.ok
    assert third.baselined_count == 1
    assert len(third.findings) == 1


def test_fingerprint_survives_line_shifts(tmp_path):
    fixture = _write(
        tmp_path, "repro/cache/clocky.py", "import time\nt0 = time.time()\n"
    )
    before = lint_paths([fixture]).findings[0].fingerprint
    fixture.write_text(
        "import time\n\n\n# pushed down\nt0 = time.time()\n", encoding="utf-8"
    )
    after = lint_paths([fixture]).findings[0].fingerprint
    assert before == after


# -- reporters and engine ---------------------------------------------------


def test_text_reporter_mentions_rule_and_location(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/clocky.py",
        "import time\nt0 = time.time()\n",
    )
    text = render_text(report)
    assert "REP-D001" in text
    assert "clocky.py:2" in text
    assert "1 error(s)" in text


def test_json_reporter_is_machine_readable(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/clocky.py",
        "import time\nt0 = time.time()\n",
    )
    payload = json.loads(render_json(report))
    assert payload["files_scanned"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "REP-D001"
    assert finding["severity"] == "error"
    assert finding["line"] == 2
    assert finding["fingerprint"]


def test_unparsable_file_reported_not_crashed(tmp_path):
    report = _lint_source(tmp_path, "repro/cache/broken.py", "def f(:\n")
    assert _rule_ids(report) == ["REP-A002"]
    assert "parse" in report.findings[0].message


# -- CLI --------------------------------------------------------------------


def test_cli_lint_exit_codes(tmp_path, capsys):
    clean = _write(tmp_path, "clean/repro/cache/mod.py", "x = 1\n")
    dirty = _write(
        tmp_path,
        "dirty/repro/cache/mod.py",
        "import time\nt0 = time.time()\n",
    )
    assert main(["lint", str(clean.parent)]) == 0
    assert main(["lint", str(dirty.parent)]) == 1
    out = capsys.readouterr().out
    assert "REP-D001" in out


def test_cli_lint_json_and_baseline_flow(tmp_path, capsys):
    dirty = _write(
        tmp_path,
        "repro/cache/mod.py",
        "import time\nt0 = time.time()\n",
    )
    baseline = tmp_path / "baseline.json"
    assert main(
        ["lint", str(dirty), "--write-baseline", str(baseline)]
    ) == 0
    capsys.readouterr()
    rc = main(
        ["lint", str(dirty), "--baseline", str(baseline), "--format", "json"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["baselined"] == 1
    assert payload["findings"] == []


def test_cli_lint_reads_pyproject_defaults(tmp_path, monkeypatch, capsys):
    # With no paths/--baseline on the command line, [tool.repro.statics]
    # in the nearest pyproject.toml supplies both (3.11+; on 3.10 the
    # config is skipped and the default `src` path scans nothing here —
    # either way the run is clean).
    _write(
        tmp_path,
        "pyproject.toml",
        "[tool.repro.statics]\n"
        'baseline = "lint-baseline.json"\n'
        'paths = ["code"]\n',
    )
    dirty = _write(
        tmp_path,
        "code/repro/cache/mod.py",
        "import time\nt0 = time.time()\n",
    )
    monkeypatch.chdir(tmp_path)
    assert main(
        ["lint", str(dirty), "--write-baseline", "lint-baseline.json"]
    ) == 0
    capsys.readouterr()
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    try:
        import tomllib  # noqa: F401
    except ImportError:
        return
    assert payload["files_scanned"] == 1
    assert payload["baselined"] == 1


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "REP-D001" in out and "REP-S001" in out


# -- REP-H003: per-event loops over trace columns ---------------------------


def test_column_loop_flagged_outside_oracles(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/analysis/hotloop.py",
        "def f(cols):\n    for t in cols.times:\n        print(t)\n",
    )
    assert _rule_ids(report) == ["REP-H003"]
    assert report.findings[0].severity.value == "warning"


def test_column_loop_through_alias_and_range_len_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/analysis/hotloop.py",
        "def f(cols):\n"
        "    kinds = cols.kinds\n"
        "    for i in range(len(kinds)):\n"
        "        print(kinds[i])\n",
    )
    assert _rule_ids(report) == ["REP-H003"]


def test_column_comprehension_and_zip_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/analysis/hotloop.py",
        "def f(cols):\n"
        "    a = [t for t in cols.times]\n"
        "    b = 0\n"
        "    for fid, size in zip(cols.file_ids, cols.sizes):\n"
        "        b += fid * size\n"
        "    return a, b\n",
    )
    assert _rule_ids(report) == ["REP-H003", "REP-H003"]


def test_column_loop_allowed_in_oracle_modules(tmp_path):
    source = "def f(cols):\n    for t in cols.times:\n        print(t)\n"
    for oracle in ("repro/trace/validate.py", "repro/analysis/onepass.py"):
        assert _lint_source(tmp_path, oracle, source).ok


def test_column_loop_suppressed_with_allow_comment(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/analysis/hotloop.py",
        "def f(cols):\n"
        "    for t in cols.times:  "
        "# repro: allow[REP-H003] -- reference path\n"
        "        print(t)\n",
    )
    assert report.ok


def test_column_loop_out_of_package_and_non_column_pass(tmp_path):
    source = "def f(cols):\n    for t in cols.times:\n        print(t)\n"
    assert _lint_source(tmp_path, "plot.py", source).ok
    report = _lint_source(
        tmp_path,
        "repro/analysis/hotloop.py",
        "def f(log):\n    for e in log.events:\n        print(e)\n",
    )
    assert report.ok


def test_packed_column_loop_and_tolist_alias_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/hotloop.py",
        "def f(packed):\n"
        "    keys = packed.keys.tolist()\n"
        "    for key in keys:\n"
        "        print(key)\n"
        "    for op in packed.ops:\n"
        "        print(op)\n",
    )
    assert _rule_ids(report) == ["REP-H003", "REP-H003"]


def test_packed_column_loop_allowed_in_stack_oracle_and_statics(tmp_path):
    source = "def f(packed):\n    for k in packed.keys:\n        print(k)\n"
    assert _lint_source(tmp_path, "repro/parallel/stack.py", source).ok
    # The linter's own AST walks (`node.ops`, `node.keys`) collide with
    # the packed column names; the package is exempt.
    assert _lint_source(tmp_path, "repro/statics/newrule.py", source).ok


def test_column_loop_in_nested_function_reported_once(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/analysis/hotloop.py",
        "def outer(cols):\n"
        "    def inner():\n"
        "        for t in cols.times:\n"
        "            print(t)\n"
        "    return inner\n",
    )
    assert _rule_ids(report) == ["REP-H003"]


# -- REP-S001: trace-schema drift -------------------------------------------


def _schema_copies(tmp_path: Path) -> dict[str, Path]:
    out = {}
    for name in ("records.py", "columns.py", "io_binary.py"):
        out[name] = Path(shutil.copy(TRACE_DIR / name, tmp_path / name))
    return out


def _mutate(path: Path, old: str, new: str) -> None:
    source = path.read_text(encoding="utf-8")
    assert old in source, f"schema fixture drifted: {old!r} not in {path.name}"
    path.write_text(source.replace(old, new), encoding="utf-8")


def test_schema_rule_passes_on_real_tree(tmp_path):
    copies = _schema_copies(tmp_path)
    findings = list(
        check_trace_schema(
            copies["records.py"], copies["columns.py"], copies["io_binary.py"]
        )
    )
    assert findings == []


def test_field_dropped_from_columnar_codec_fails(tmp_path):
    # The acceptance-criterion regression: remove one field from the
    # columnar builder and the drift rule must fire.
    copies = _schema_copies(tmp_path)
    _mutate(
        copies["columns.py"],
        "                initial_pos=self.positions[i],\n",
        "",
    )
    findings = list(
        check_trace_schema(
            copies["records.py"], copies["columns.py"], copies["io_binary.py"]
        )
    )
    assert any(
        f.rule_id == "REP-S001"
        and "initial_pos" in f.message
        and "never passed" in f.message
        for f in findings
    )


def test_field_unread_by_columnar_reader_fails(tmp_path):
    copies = _schema_copies(tmp_path)
    _mutate(
        copies["columns.py"],
        "                positions[i] = event.initial_pos\n",
        "",
    )
    findings = list(
        check_trace_schema(
            copies["records.py"], copies["columns.py"], copies["io_binary.py"]
        )
    )
    assert any(
        "initial_pos" in f.message and "never read" in f.message
        for f in findings
    )


def test_field_deleted_from_records_fails_both_codecs(tmp_path):
    copies = _schema_copies(tmp_path)
    _mutate(copies["records.py"], "    initial_pos: int = 0\n", "")
    findings = list(
        check_trace_schema(
            copies["records.py"], copies["columns.py"], copies["io_binary.py"]
        )
    )
    drifted = [f for f in findings if "initial_pos" in f.message]
    assert {f.path for f in drifted} == {
        str(copies["columns.py"]),
        str(copies["io_binary.py"]),
    }
    assert any("not a field of the record" in f.message for f in drifted)


def test_schema_rule_triggers_through_lint_paths(tmp_path):
    copies = _schema_copies(tmp_path)
    _mutate(
        copies["columns.py"],
        "                initial_pos=self.positions[i],\n",
        "",
    )
    report = lint_paths([tmp_path])
    assert any(f.rule_id == "REP-S001" for f in report.findings)
    # An incomplete artifact trio (no records.py) is not checked.
    copies["records.py"].unlink()
    assert lint_paths([tmp_path]).ok


# -- REP-S002: corpus schema drift ------------------------------------------

CORPUS_FORMAT = REPO_SRC / "repro" / "corpus" / "format.py"


def _corpus_copy(tmp_path: Path) -> Path:
    target = tmp_path / "corpus" / "format.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    return Path(shutil.copy(CORPUS_FORMAT, target))


def test_corpus_schema_rule_passes_on_real_tree(tmp_path):
    copy = _corpus_copy(tmp_path)
    assert list(check_corpus_schema(copy)) == []


def test_corpus_layout_edit_without_version_bump_fails(tmp_path):
    # The acceptance-criterion regression: grow the stat record (a new
    # field without bumping FORMAT_VERSION) and the rule must fire.
    copy = _corpus_copy(tmp_path)
    _mutate(copy, '    "flag_hist",\n', '    "flag_hist",\n    "reserved2",\n')
    findings = list(check_corpus_schema(copy))
    assert any(
        f.rule_id == "REP-S002"
        and "drifted" in f.message
        and "bump FORMAT_VERSION" in f.message
        for f in findings
    )


def test_corpus_version_bump_requires_new_digest_and_magics(tmp_path):
    copy = _corpus_copy(tmp_path)
    _mutate(copy, "FORMAT_VERSION = 1\n", "FORMAT_VERSION = 2\n")
    messages = [f.message for f in check_corpus_schema(copy)]
    assert any("no entry for FORMAT_VERSION" in m for m in messages)
    # All three magics still carry the old version byte.
    assert sum("version byte" in m for m in messages) == 3


def test_corpus_non_literal_registry_is_an_error(tmp_path):
    copy = _corpus_copy(tmp_path)
    _mutate(
        copy,
        "SCHEMA_DIGESTS = {1: _SCHEMA_DIGEST_V1}\n",
        "SCHEMA_DIGESTS = _compute_digests()\n",
    )
    findings = list(check_corpus_schema(copy))
    assert len(findings) == 1
    assert "cannot recompute" in findings[0].message


def test_corpus_schema_rule_triggers_through_lint_paths(tmp_path):
    copy = _corpus_copy(tmp_path)
    _mutate(copy, "BYTES_PER_EVENT = 50\n", "BYTES_PER_EVENT = 58\n")
    report = lint_paths([tmp_path])
    assert any(f.rule_id == "REP-S002" for f in report.findings)
    # format.py outside a corpus/ directory is not checked.
    other = tmp_path / "elsewhere" / "format.py"
    other.parent.mkdir()
    shutil.copy(copy, other)
    copy.unlink()
    assert lint_paths([tmp_path]).ok


# -- self-lint: the repository must hold its own invariants -----------------


def test_repository_source_lints_clean():
    report = lint_paths([REPO_SRC])
    assert report.findings == [], render_text(report)


def test_repository_tests_lint_clean():
    report = lint_paths([Path(__file__).resolve().parent])
    assert report.findings == [], render_text(report)
