"""Tests for the flow-aware half of repro.statics.

Covers the call-graph core (resolution, shadowing, cycles, caching),
the dataflow interpreter (assignments, branches, loops, comprehensions),
the taint-lattice rule families (REP-D004/D005 RNG provenance, REP-U001
unit mixing), the cross-module engine-parity rules (REP-E001/E002) with
fixture trees that break each leg of the contract, stale-suppression
detection (REP-A001), and the new CLI surface (``--changed``,
``--update-baseline``, ``--format sarif``, ``--callgraph-cache``).

Fixture files live under a ``repro/<pkg>/`` directory inside tmp_path so
:func:`module_name_for` maps them into the scoped packages the rules
guard, exactly as in ``test_statics.py``.
"""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.cli.main import main
from repro.statics import (
    TaintPolicy,
    analyze_flow,
    build_callgraph,
    check_engine_parity,
    check_fuzz_coverage,
    collect_files,
    extract_facts,
    lint_paths,
    load_or_build,
    render_sarif,
)
from repro.statics.context import ModuleContext
from repro.statics.dataflow import iter_scopes
from repro.statics.rules_engines import shared_graph

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def _write(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def _lint_source(tmp_path: Path, relpath: str, source: str):
    return lint_paths([_write(tmp_path, relpath, source)])


def _rule_ids(report) -> list[str]:
    return [f.rule_id for f in report.findings]


# -- call graph: symbols and edges ------------------------------------------


def test_callgraph_symbols_and_edges(tmp_path):
    _write(tmp_path, "repro/a.py", "def f():\n    return 1\n")
    _write(
        tmp_path,
        "repro/b.py",
        "from repro.a import f\n\ndef g():\n    return f()\n",
    )
    graph = build_callgraph(collect_files([tmp_path]))
    assert graph.symbol("repro.a.f").kind == "function"
    assert graph.symbol("repro.b.g").params == ()
    callers = graph.callers_of("repro.a.f")
    assert [c.caller for c in callers] == ["repro.b.g"]
    assert all(c.resolved for c in callers)


def test_callgraph_relative_import_resolution(tmp_path):
    _write(tmp_path, "repro/pkg/__init__.py", "")
    _write(tmp_path, "repro/pkg/impl.py", "def helper():\n    return 1\n")
    _write(
        tmp_path,
        "repro/pkg/caller.py",
        "from .impl import helper\n\ndef use():\n    return helper()\n",
    )
    graph = build_callgraph(collect_files([tmp_path]))
    callers = graph.callers_of("repro.pkg.impl.helper")
    assert [c.caller for c in callers] == ["repro.pkg.caller.use"]


def test_callgraph_reexport_following(tmp_path):
    _write(tmp_path, "repro/pkg/__init__.py", "from .impl import helper\n")
    _write(tmp_path, "repro/pkg/impl.py", "def helper():\n    return 1\n")
    _write(
        tmp_path,
        "repro/use.py",
        "from repro.pkg import helper\n\ndef go():\n    return helper()\n",
    )
    graph = build_callgraph(collect_files([tmp_path]))
    callers = graph.callers_of("repro.pkg.impl.helper")
    assert [c.caller for c in callers] == ["repro.use.go"]


def test_callgraph_cycles_terminate(tmp_path):
    _write(
        tmp_path,
        "repro/c1.py",
        "from repro.c2 import g\n\ndef f():\n    return g()\n",
    )
    _write(
        tmp_path,
        "repro/c2.py",
        "from repro.c1 import f\n\ndef g():\n    return f()\n",
    )
    graph = build_callgraph(collect_files([tmp_path]))
    reached = graph.reachable_from(["repro.c1.f"])
    assert {"repro.c1.f", "repro.c2.g"} <= reached


def test_callgraph_local_def_shadows_import(tmp_path):
    _write(tmp_path, "repro/a.py", "def f():\n    return 1\n")
    _write(
        tmp_path,
        "repro/s.py",
        "from repro.a import f\n\n"
        "def f():\n    return 0\n\n"
        "def g():\n    return f()\n",
    )
    graph = build_callgraph(collect_files([tmp_path]))
    assert [c.caller for c in graph.callers_of("repro.s.f")] == ["repro.s.g"]
    assert graph.callers_of("repro.a.f") == []


def test_callgraph_conditional_defs_recorded(tmp_path):
    _write(
        tmp_path,
        "repro/cond.py",
        "try:\n"
        "    def fast():\n        return 1\n"
        "except ImportError:\n"
        "    def fast():\n        return 2\n",
    )
    graph = build_callgraph(collect_files([tmp_path]))
    assert graph.symbol("repro.cond.fast") is not None


def test_callgraph_dispatch_detection(tmp_path):
    path = _write(
        tmp_path,
        "repro/vec/mod.py",
        "from repro.trace.npview import resolve_engine\n\n\n"
        "def work(cols, engine='auto'):\n"
        "    if resolve_engine(engine) == 'numpy':\n"
        "        return fast_numpy(cols)\n"
        "    return slow(cols)\n\n\n"
        "def fast_numpy(cols):\n    return 1\n\n\n"
        "def slow(cols):\n    return 2\n",
    )
    facts = extract_facts(path)
    (dispatch,) = facts.dispatches
    assert dispatch.qname == "repro.vec.mod.work"
    assert dispatch.has_fallback
    branches = {
        c.callee: c.branch for c in facts.calls if c.caller == dispatch.qname
    }
    assert branches["fast_numpy"] == "numpy"
    assert branches["slow"] == "fallback"


def test_callgraph_cache_roundtrip_and_invalidation(tmp_path):
    src = _write(tmp_path, "repro/cached.py", "def f():\n    return 1\n")
    cache = tmp_path / "graph-cache.json"
    load_or_build([src], cache=cache)
    data = json.loads(cache.read_text(encoding="utf-8"))
    assert data["version"] == 2
    # Prove the cache is consulted: inject a symbol under the still-valid
    # digest and observe it surface in the rebuilt graph...
    entry = data["files"][0]
    entry["symbols"][0]["name"] = "injected"
    entry["symbols"][0]["qname"] = "repro.cached.injected"
    cache.write_text(json.dumps(data), encoding="utf-8")
    graph = load_or_build([src], cache=cache)
    assert graph.symbol("repro.cached.injected") is not None
    # ...then change the source and observe digest invalidation: the
    # injected entry is discarded and the real facts re-extracted.
    src.write_text("def f():\n    return 2\n", encoding="utf-8")
    graph = load_or_build([src], cache=cache)
    assert graph.symbol("repro.cached.injected") is None
    assert graph.symbol("repro.cached.f") is not None


# -- dataflow interpreter ---------------------------------------------------


class _SourcePolicy(TaintPolicy):
    """Taints the free name ``SRC``; everything else flows untainted."""

    def name_taint(self, ctx, name):
        return frozenset({"src"}) if name == "SRC" else frozenset()


def _returns_of(tmp_path, body: str) -> frozenset:
    path = _write(tmp_path, "repro/flowfx.py", body)
    ctx = ModuleContext(path, body)
    fn = next(
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.FunctionDef)
    )
    return analyze_flow(ctx, fn, _SourcePolicy()).returns


def test_flow_assignment_chain(tmp_path):
    assert _returns_of(
        tmp_path, "def f():\n    x = SRC\n    y = x\n    return y\n"
    ) == {"src"}


def test_flow_ternary_join(tmp_path):
    assert _returns_of(
        tmp_path, "def f(c):\n    x = SRC if c else 0\n    return x\n"
    ) == {"src"}


def test_flow_comprehension(tmp_path):
    assert _returns_of(
        tmp_path,
        "def f():\n"
        "    xs = [SRC]\n"
        "    ys = [y for y in xs]\n"
        "    return ys\n",
    ) == {"src"}


def test_flow_loop_fixpoint(tmp_path):
    # tmp only picks up the taint on the second loop pass: the fixpoint
    # iteration is what carries it.
    assert _returns_of(
        tmp_path,
        "def f(n):\n"
        "    tmp = 0\n"
        "    acc = 0\n"
        "    for i in range(n):\n"
        "        tmp = acc\n"
        "        acc = SRC\n"
        "    return tmp\n",
    ) == {"src"}


def test_flow_tuple_unpack_and_augassign(tmp_path):
    assert _returns_of(
        tmp_path, "def f():\n    a, b = (SRC, 0)\n    return a\n"
    ) == {"src"}
    assert _returns_of(
        tmp_path, "def f():\n    x = 0\n    x += SRC\n    return x\n"
    ) == {"src"}


def test_flow_walrus_binds(tmp_path):
    assert _returns_of(
        tmp_path,
        "def f():\n    if (y := SRC):\n        pass\n    return y\n",
    ) == {"src"}


def test_iter_scopes_yields_module_and_nested_defs(tmp_path):
    source = "def outer():\n    def inner():\n        pass\n"
    ctx = ModuleContext(tmp_path / "m.py", source)
    scopes = list(iter_scopes(ctx))
    assert len(scopes) == 3  # module + outer + inner


# -- REP-D004 / REP-D005: RNG provenance through dataflow -------------------


def test_d004_aliased_module_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/flowrng.py",
        "import random\n\n\ndef pick(xs):\n    r = random\n    r.shuffle(xs)\n",
    )
    assert _rule_ids(report) == ["REP-D004"]


def test_d004_aliased_draw_function_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/flowrng.py",
        "import random\n\n\ndef draw():\n    f = random.random\n    return f()\n",
    )
    assert _rule_ids(report) == ["REP-D004"]


def test_d005_unseeded_factory_bypass_flagged(tmp_path):
    # The seeded-Generator-bypass regression: the function accepts rng
    # but draws from a locally constructed, unseeded generator.
    report = _lint_source(
        tmp_path,
        "repro/cache/flowrng.py",
        "import random\n\n\n"
        "def pick(files, rng):\n"
        "    make = random.Random\n"
        "    r = make()\n"
        "    r.shuffle(files)\n"
        "    return rng.choice(files)\n",
    )
    assert _rule_ids(report) == ["REP-D005"]


def test_d005_seeded_and_param_draws_clean(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/flowrng.py",
        "import random\n\n\n"
        "def pick(files, seed, rng):\n"
        "    make = random.Random\n"
        "    r = make(seed)\n"
        "    r.shuffle(files)\n"
        "    rng.shuffle(files)\n"
        "    return files\n",
    )
    assert report.ok


def test_rng_flow_rules_scoped_to_determinism_packages(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/tools/flowrng.py",
        "import random\n\n\ndef pick(xs):\n    r = random\n    r.shuffle(xs)\n",
    )
    assert report.ok


# -- REP-U001: seconds/centiseconds unit taint ------------------------------


def test_u001_comparison_regression_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/trace/unitsfx.py",
        "_MAX_CS = 4294967295\n\n\n"
        "def check(event_time):\n"
        "    return event_time <= _MAX_CS\n",
    )
    assert _rule_ids(report) == ["REP-U001"]


def test_u001_explicit_conversion_clean(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/trace/unitsfx.py",
        "_MAX_CS = 4294967295\n\n\n"
        "def check(event_time):\n"
        "    return round(event_time * 100) <= _MAX_CS\n",
    )
    assert report.ok


def test_u001_assignment_and_keyword_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/corpus/unitsfx.py",
        "def store(row, elapsed):\n"
        "    row_cs = elapsed\n"
        "    return row_cs\n\n\n"
        "def emit(writer, start_cs):\n"
        "    writer.write(time_first=start_cs)\n",
    )
    assert _rule_ids(report) == ["REP-U001", "REP-U001"]


def test_u001_scoped_to_unit_packages(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/unitsfx.py",
        "_MAX_CS = 4294967295\n\n\n"
        "def check(event_time):\n"
        "    return event_time <= _MAX_CS\n",
    )
    assert report.ok


# -- REP-E001 / REP-E002: engine parity fixture trees -----------------------


def _engine_tree(
    tmp_path,
    *,
    name: str = "tree",
    fallback: bool = True,
    drift: bool = False,
    orphan: bool = False,
    fuzz_calls: bool = True,
    fuzz_module: bool = True,
) -> Path:
    root = tmp_path / name
    _write(root, "repro/vec/__init__.py", "")
    kernel_sig = "cols, window, chunk=64" if drift else "cols, window, scale=1.0"
    kernels = f"def scan_numpy({kernel_sig}):\n    return 1\n"
    if orphan:
        kernels += "\n\ndef extra_numpy(cols):\n    return 2\n"
    _write(root, "repro/vec/kernels.py", kernels)
    _write(
        root,
        "repro/vec/oracle.py",
        "def scan_python(cols, window, scale=1.0):\n    return 1\n",
    )
    gate = (
        "from repro.trace.npview import resolve_engine\n"
        "from .kernels import scan_numpy\n"
        "from .oracle import scan_python\n\n\n"
        "def scan(cols, window, scale=1.0, engine='auto'):\n"
        "    if resolve_engine(engine) == 'numpy':\n"
        "        return scan_numpy(cols, window)\n"
    )
    if fallback:
        gate += "    return scan_python(cols, window, scale=scale)\n"
    _write(root, "repro/vec/dispatch.py", gate)
    if fuzz_module:
        _write(root, "repro/fuzz/__init__.py", "")
        if fuzz_calls:
            pillar = (
                "from ..vec.dispatch import scan\n\n\n"
                "def check(cols):\n"
                "    a = scan(cols, 4, engine='python')\n"
                "    b = scan(cols, 4, engine='numpy')\n"
                "    return a == b\n"
            )
        else:
            pillar = "def check(cols):\n    return True\n"
        _write(root, "repro/fuzz/pillar.py", pillar)
    return root


def test_engine_fixture_tree_clean(tmp_path):
    report = lint_paths([_engine_tree(tmp_path)])
    assert report.ok, _rule_ids(report)


def test_e001_missing_fallback(tmp_path):
    root = _engine_tree(tmp_path, fallback=False)
    report = lint_paths([root])
    assert _rule_ids(report) == ["REP-E001"]
    assert "fallback" in report.findings[0].message


def test_e001_signature_drift(tmp_path):
    root = _engine_tree(tmp_path, drift=True)
    report = lint_paths([root])
    assert _rule_ids(report) == ["REP-E001"]
    assert "chunk" in report.findings[0].message


def test_e001_orphan_fast_path(tmp_path):
    root = _engine_tree(tmp_path, orphan=True)
    report = lint_paths([root])
    assert _rule_ids(report) == ["REP-E001"]
    assert "extra_numpy" in report.findings[0].message


def test_e002_missing_differential(tmp_path):
    root = _engine_tree(tmp_path, fuzz_calls=False)
    report = lint_paths([root])
    assert _rule_ids(report) == ["REP-E002"]


def test_e002_silent_without_fuzz_modules_in_scan(tmp_path):
    # A scan that includes no fuzz-package module cannot judge coverage.
    root = _engine_tree(tmp_path, fuzz_module=False)
    report = lint_paths([root])
    assert report.ok


def test_engine_rules_skipped_on_scoped_run(tmp_path):
    root = _engine_tree(tmp_path, fallback=False, fuzz_calls=False)
    report = lint_paths([root], scoped=True)
    assert report.ok


# -- REP-A001: stale suppressions -------------------------------------------


def test_stale_suppression_flagged(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/stale.py",
        "x = 1  # repro: allow[REP-D001] -- historical\n",
    )
    assert _rule_ids(report) == ["REP-A001"]
    assert "stale" in report.findings[0].message


def test_used_suppression_not_stale(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/used.py",
        "import time\nt0 = time.time()  # repro: allow[REP-D001] -- fixture\n",
    )
    assert report.ok
    assert report.suppressed_count == 1


def test_stale_check_skipped_on_scoped_run(tmp_path):
    path = _write(
        tmp_path,
        "repro/cache/stale.py",
        "x = 1  # repro: allow[REP-D001] -- historical\n",
    )
    assert lint_paths([path], scoped=True).ok


# -- CLI: --changed, --update-baseline, sarif, --callgraph-cache ------------


def _git(root: Path, *argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        ["git", *argv], cwd=root, capture_output=True, text=True
    )


@pytest.fixture
def git_tree(tmp_path, monkeypatch):
    if shutil.which("git") is None:
        pytest.skip("git unavailable")
    monkeypatch.chdir(tmp_path)
    assert _git(tmp_path, "init", "-q").returncode == 0
    _write(tmp_path, "repro/cache/clean.py", "x = 1\n")
    _git(tmp_path, "add", "-A")
    commit = _git(
        tmp_path,
        "-c", "user.email=lint@example.invalid",
        "-c", "user.name=lint",
        "commit", "-q", "-m", "seed",
    )
    assert commit.returncode == 0, commit.stderr
    return tmp_path


def test_cli_changed_scopes_to_touched_files(git_tree, capsys):
    _write(git_tree, "repro/cache/dirty.py", "import time\nt0 = time.time()\n")
    rc = main(
        ["lint", str(git_tree), "--changed", "HEAD", "--format", "json"]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["REP-D001"]


def test_cli_changed_bad_ref_is_an_error(git_tree):
    assert main(["lint", str(git_tree), "--changed", "no-such-ref"]) == 2


def test_cli_changed_conflicts_with_update_baseline(git_tree):
    rc = main(
        [
            "lint", str(git_tree),
            "--changed", "HEAD",
            "--baseline", "b.json",
            "--update-baseline",
        ]
    )
    assert rc == 2


def test_cli_update_baseline_refreshes(tmp_path, capsys):
    dirty = _write(
        tmp_path,
        "repro/cache/mod.py",
        "import time\nt0 = time.time()\n",
    )
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(dirty), "--write-baseline", str(baseline)]) == 0
    dirty.write_text(
        "import time\nt0 = time.time()\n"
        "import random\nx = random.random()\n",
        encoding="utf-8",
    )
    capsys.readouterr()
    rc = main(
        ["lint", str(dirty), "--baseline", str(baseline), "--update-baseline"]
    )
    assert rc == 0
    assert "2 grandfathered" in capsys.readouterr().out
    rc = main(
        ["lint", str(dirty), "--baseline", str(baseline), "--format", "json"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["baselined"] == 2


def test_cli_update_baseline_requires_a_baseline(tmp_path, monkeypatch):
    # chdir away from the repo so its pyproject cannot supply a baseline.
    monkeypatch.chdir(tmp_path)
    clean = _write(tmp_path, "repro/cache/mod.py", "x = 1\n")
    assert main(["lint", str(clean), "--update-baseline"]) == 2


def test_sarif_payload_shape(tmp_path):
    report = _lint_source(
        tmp_path,
        "repro/cache/clocky.py",
        "import time\nt0 = time.time()\n",
    )
    payload = json.loads(render_sarif(report))
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-statics"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"REP-D001", "REP-E001", "REP-A001"} <= rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "REP-D001"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("clocky.py")
    assert location["region"]["startLine"] == 2
    assert result["partialFingerprints"]["reproStaticsFingerprint/v1"]


def test_cli_sarif_output_file(tmp_path, capsys):
    dirty = _write(
        tmp_path,
        "repro/cache/mod.py",
        "import time\nt0 = time.time()\n",
    )
    out = tmp_path / "statics.sarif"
    rc = main(
        ["lint", str(dirty), "--format", "sarif", "--output", str(out)]
    )
    assert rc == 1
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["runs"][0]["results"]


def test_cli_callgraph_cache_written(tmp_path):
    root = _engine_tree(tmp_path)
    cache = tmp_path / "facts.json"
    rc = main(["lint", str(root), "--callgraph-cache", str(cache)])
    assert rc == 0
    data = json.loads(cache.read_text(encoding="utf-8"))
    assert data["version"] == 2
    assert data["files"]


def test_lint_paths_rejects_unknown_override(tmp_path):
    path = _write(tmp_path, "repro/cache/mod.py", "x = 1\n")
    with pytest.raises(ValueError):
        lint_paths([path], overrides={"bogus_option": []})


def test_lint_paths_override_widens_scope(tmp_path):
    path = _write(
        tmp_path,
        "repro/tools/clocky.py",
        "import time\nt0 = time.time()\n",
    )
    assert lint_paths([path]).ok
    report = lint_paths(
        [path], overrides={"determinism_packages": ["repro.tools"]}
    )
    assert _rule_ids(report) == ["REP-D001"]


# -- whole-tree regression ---------------------------------------------------


def test_tree_dispatches_all_paired_and_fuzzed():
    files = collect_files([REPO_SRC])
    graph = shared_graph(files)
    assert len(graph.dispatches) >= 8
    known = "repro.parallel.packed.pack_stream"
    fast = [
        c.callee
        for c in graph.callees_of(known)
        if c.branch == "numpy" and c.resolved
    ]
    assert any(q.endswith("pack_stream_numpy") for q in fast)
    assert list(check_engine_parity(files)) == []
    assert list(check_fuzz_coverage(files)) == []
