"""Tests for the strace parser and converter."""

import io
import textwrap

import pytest

from repro.analysis.accesses import reconstruct_accesses
from repro.strace.convert import convert_calls, convert_file
from repro.strace.parser import StraceCall, parse_lines
from repro.trace.records import AccessMode
from repro.trace.validate import validate

SAMPLE = textwrap.dedent("""\
    1000 1688912345.100000 execve("/bin/cat", ["cat", "f.txt"], 0x7ffd /* 20 vars */) = 0
    1000 1688912345.200000 openat(AT_FDCWD, "/etc/passwd", O_RDONLY|O_CLOEXEC) = 3
    1000 1688912345.210000 read(3, "root:x:0:0"..., 4096) = 2000
    1000 1688912345.220000 read(3, "", 4096) = 0
    1000 1688912345.230000 close(3) = 0
    1000 1688912345.300000 openat(AT_FDCWD, "/tmp/out", O_WRONLY|O_CREAT|O_TRUNC, 0644) = 4
    1000 1688912345.310000 write(4, "hello"..., 5000) = 5000
    1000 1688912345.320000 lseek(4, 1000, SEEK_SET) = 1000
    1000 1688912345.330000 write(4, "x"..., 100) = 100
    1000 1688912345.340000 close(4) = 0
    1000 1688912345.400000 unlink("/tmp/out") = 0
    1000 1688912345.500000 openat(AT_FDCWD, "/gone", O_RDONLY) = -1 ENOENT (No such file)
""")


class TestParser:
    def test_parses_all_good_lines(self):
        calls = list(parse_lines(io.StringIO(SAMPLE)))
        assert len(calls) == 12
        assert calls[0].name == "execve"
        assert calls[0].pid == 1000

    def test_path_and_int_args(self):
        calls = list(parse_lines(io.StringIO(SAMPLE)))
        openat = calls[1]
        assert openat.path_arg(0) == "/etc/passwd"
        read = calls[2]
        assert read.int_arg(0) == 3
        assert read.retval == 2000

    def test_failed_call_retval_negative(self):
        calls = list(parse_lines(io.StringIO(SAMPLE)))
        assert calls[-1].retval == -1

    def test_unfinished_resumed_stitched(self):
        text = (
            "7 100.000000 read(5,  <unfinished ...>\n"
            "8 100.000500 write(1, \"x\", 1) = 1\n"
            "7 100.001000 <... read resumed>\"data\", 4096) = 4\n"
        )
        calls = list(parse_lines(io.StringIO(text)))
        names = [(c.pid, c.name, c.retval) for c in calls]
        assert (8, "write", 1) in names
        assert (7, "read", 4) in names
        read = next(c for c in calls if c.name == "read")
        assert read.time == pytest.approx(100.0)  # call start time

    def test_junk_lines_skipped(self):
        text = (
            "--- SIGCHLD {si_signo=SIGCHLD} ---\n"
            "1 1.0 exit_group(0) = ?\n"
            "+++ exited with 0 +++\n"
            "1 2.000000 stat(\"/x\", {...}) = 0\n"  # uninteresting syscall
        )
        assert list(parse_lines(io.StringIO(text))) == []

    def test_no_pid_prefix_ok(self):
        text = '1688912345.100000 openat(AT_FDCWD, "/f", O_RDONLY) = 3\n'
        (call,) = parse_lines(io.StringIO(text))
        assert call.pid == 0
        assert call.name == "openat"


class TestConverter:
    def _convert(self, text=SAMPLE):
        return convert_calls(parse_lines(io.StringIO(text)), name="t")

    def test_trace_validates(self):
        log, _stats = self._convert()
        assert validate(log).ok

    def test_event_mix(self):
        log, _stats = self._convert()
        assert log.count("open") + log.count("create") == 2
        assert log.count("close") == 2
        assert log.count("seek") == 1
        assert log.count("unlink") == 1
        assert log.count("exec") == 1

    def test_failed_open_skipped(self):
        log, stats = self._convert()
        opens = log.of_kind("open")
        assert all(e.size >= 0 for e in opens)
        assert stats.skipped >= 1

    def test_read_positions_folded(self):
        log, stats = self._convert()
        accesses = reconstruct_accesses(log)
        passwd = next(a for a in accesses if a.mode is AccessMode.READ)
        assert passwd.bytes_transferred == 2000  # EOF read did not advance
        assert stats.reads_folded == 2

    def test_write_with_seek_reconstructs_runs(self):
        log, _stats = self._convert()
        accesses = reconstruct_accesses(log)
        out = next(a for a in accesses if a.mode is AccessMode.WRITE)
        assert out.created and out.new_file
        assert out.seeks == 1
        assert len(out.runs) == 2
        assert out.runs[0].length == 5000
        assert out.runs[1].length == 100

    def test_times_rebased_to_zero(self):
        log, _stats = self._convert()
        assert log.start_time == pytest.approx(0.0)

    def test_recreate_after_unlink_gets_new_file_id(self):
        text = (
            '1 1.000000 openat(AT_FDCWD, "/f", O_WRONLY|O_CREAT) = 3\n'
            "1 1.100000 close(3) = 0\n"
            '1 1.200000 unlink("/f") = 0\n'
            '1 1.300000 openat(AT_FDCWD, "/f", O_WRONLY|O_CREAT) = 3\n'
            "1 1.400000 close(3) = 0\n"
        )
        log, _stats = convert_calls(parse_lines(io.StringIO(text)))
        opens = log.of_kind("open")
        unlink = log.of_kind("unlink")[0]
        assert opens[0].file_id == unlink.file_id
        assert opens[1].file_id != opens[0].file_id

    def test_append_open_starts_at_known_size(self):
        text = (
            '1 1.000000 openat(AT_FDCWD, "/log", O_WRONLY|O_CREAT) = 3\n'
            '1 1.100000 write(3, "x", 100) = 100\n'
            "1 1.200000 close(3) = 0\n"
            '1 1.300000 openat(AT_FDCWD, "/log", O_WRONLY|O_APPEND) = 3\n'
            '1 1.400000 write(3, "y", 50) = 50\n'
            "1 1.500000 close(3) = 0\n"
        )
        log, _stats = convert_calls(parse_lines(io.StringIO(text)))
        second = log.of_kind("open")[1]
        assert second.initial_pos == 100
        closes = log.of_kind("close")
        assert closes[1].final_pos == 150

    def test_dangling_fds_closed_at_end(self):
        text = '1 1.000000 openat(AT_FDCWD, "/f", O_RDONLY) = 3\n'
        log, _stats = convert_calls(parse_lines(io.StringIO(text)))
        assert log.count("close") == 1

    def test_ftruncate_maps_to_file(self):
        text = (
            '1 1.000000 openat(AT_FDCWD, "/f", O_RDWR|O_CREAT) = 3\n'
            '1 1.100000 write(3, "x", 100) = 100\n'
            "1 1.200000 ftruncate(3, 0) = 0\n"
            "1 1.300000 close(3) = 0\n"
        )
        log, _stats = convert_calls(parse_lines(io.StringIO(text)))
        trunc = log.of_kind("trunc")[0]
        assert trunc.new_length == 0
        assert trunc.file_id == log.of_kind("open")[0].file_id

    def test_convert_file_from_disk(self, tmp_path):
        path = tmp_path / "s.log"
        path.write_text(SAMPLE)
        log, stats = convert_file(str(path))
        assert len(log) > 0
        assert stats.calls == 12


class TestRenameAndDup:
    def test_rename_carries_file_identity(self):
        text = (
            '1 1.000000 openat(AT_FDCWD, "/tmp/x", O_WRONLY|O_CREAT) = 3\n'
            '1 1.100000 write(3, "d", 500) = 500\n'
            "1 1.200000 close(3) = 0\n"
            '1 1.300000 rename("/tmp/x", "/final") = 0\n'
            '1 1.400000 openat(AT_FDCWD, "/final", O_RDONLY) = 3\n'
            '1 1.500000 read(3, "d", 500) = 500\n'
            "1 1.600000 close(3) = 0\n"
        )
        log, _ = convert_calls(parse_lines(io.StringIO(text)))
        opens = log.of_kind("open")
        assert opens[0].file_id == opens[1].file_id
        assert opens[1].size == 500  # size knowledge followed the rename

    def test_rename_while_fd_open_keeps_tracking(self):
        text = (
            '1 1.000000 openat(AT_FDCWD, "/a", O_WRONLY|O_CREAT) = 3\n'
            '1 1.100000 rename("/a", "/b") = 0\n'
            '1 1.200000 write(3, "d", 100) = 100\n'
            "1 1.300000 close(3) = 0\n"
        )
        log, _ = convert_calls(parse_lines(io.StringIO(text)))
        assert log.of_kind("close")[0].final_pos == 100

    def test_dup_shares_offset_and_closes_once(self):
        text = (
            '1 1.000000 openat(AT_FDCWD, "/f", O_WRONLY|O_CREAT) = 3\n'
            "1 1.100000 dup(3) = 4\n"
            '1 1.200000 write(3, "d", 100) = 100\n'
            "1 1.300000 close(3) = 0\n"
            '1 1.400000 write(4, "d", 50) = 50\n'
            "1 1.500000 close(4) = 0\n"
        )
        log, _ = convert_calls(parse_lines(io.StringIO(text)))
        assert log.count("open") + log.count("create") == 1
        closes = log.of_kind("close")
        assert len(closes) == 1
        assert closes[0].final_pos == 150

    def test_failed_rename_skipped(self):
        text = '1 1.000000 rename("/a", "/b") = -1 ENOENT (No such file)\n'
        log, stats = convert_calls(parse_lines(io.StringIO(text)))
        assert len(log) == 0
        assert stats.skipped == 1
