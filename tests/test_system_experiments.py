"""Tests for the system experiments (Leffler, other-I/O, static scan)."""

import pytest

from repro.analysis.staticscan import scan_disk
from repro.experiments import all_system_ids, run_system_experiment
from repro.trace.records import AccessMode
from repro.workload.generator import generate
from repro.workload.profiles import UCBARPA


@pytest.fixture(scope="module")
def result():
    return generate(UCBARPA, seed=21, duration=1800.0)


class TestRegistry:
    def test_ids(self):
        assert set(all_system_ids()) == {"leffler", "other_io", "static_scan"}

    def test_unknown_id(self, result):
        with pytest.raises(KeyError, match="leffler"):
            run_system_experiment("nope", result)


class TestLeffler:
    def test_live_and_simulated_agree_roughly(self, result):
        data = run_system_experiment("leffler", result).data
        assert 0 < data["simulated_miss_ratio"] < 1
        assert 0 < data["live_miss_ratio"] < 1
        # Same activity, same cache size, same policy: the two views of the
        # cache should land within ~15 percentage points of each other.
        assert abs(data["live_miss_ratio"] - data["simulated_miss_ratio"]) < 0.15

    def test_live_accesses_counted(self, result):
        data = run_system_experiment("leffler", result).data
        assert data["live_accesses"] > 1000


class TestOtherIo:
    def test_exec_ratio_near_paper_band(self, result):
        data = run_system_experiment("other_io", result).data
        # Paper: total program bytes were 1.2-2.0x the logical file I/O.
        assert 0.5 <= data["exec_ratio"] <= 3.0

    def test_dnlc_hit_ratio_high(self, result):
        data = run_system_experiment("other_io", result).data
        # Leffler et al. measured 85%; ours should be in that ballpark.
        assert data["dnlc_hit_ratio"] > 0.7

    def test_other_accesses_are_material(self, result):
        data = run_system_experiment("other_io", result).data
        # Section 8: "more than half of all disk block references could
        # come from these other accesses" — at least a large fraction.
        assert data["other_fraction"] > 0.3


class TestStaticScan:
    def test_scan_counts_regular_files_only(self, fs):
        fs.mkdir("/d")
        fd = fs.creat("/d/f")
        fs.write(fd, b"x" * 2048)
        fs.close(fd)
        scan = scan_disk(fs)
        assert scan.file_count == 1
        assert scan.directory_count == 2
        assert scan.total_bytes == 2048

    def test_unlinked_open_files_invisible(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"x" * 100)
        fs.unlink("/f")
        assert scan_disk(fs).file_count == 0
        fs.close(fd)

    def test_static_misses_short_lived_files(self, result):
        data = run_system_experiment("static_scan", result).data
        # The dynamic view re-counts hot small files per access, so its
        # small-file fraction is at least the static one (and the medians
        # tell the same story the paper tells about prior static studies).
        assert data["static_files"] > 100
        assert data["dynamic_under_10k"] >= data["static_under_10k"] - 0.15

    def test_render(self, result):
        text = run_system_experiment("static_scan", result).rendered
        assert "Static scan" in text


class TestAgeCdf:
    def test_age_reflects_modification_times(self, clock, fs):
        fd = fs.creat("/old")
        fs.write(fd, b"x")
        fs.close(fd)
        clock.advance(1000.0)
        fd = fs.creat("/new")
        fs.write(fd, b"x")
        fs.close(fd)
        scan = scan_disk(fs)
        assert scan.age_cdf.fraction_at_or_below(1.0) == pytest.approx(0.5)
