"""Tests for the text and binary trace serializations."""

import io

import pytest

from repro.trace.columns import TraceColumns
from repro.trace.io_binary import (
    MAX_TRACE_TIME,
    BinaryTraceError,
    BinaryTraceWriter,
    iter_binary,
    read_binary,
    read_binary_columns,
    write_binary,
    write_binary_columns,
)
from repro.trace.io_text import (
    TraceFormatError,
    format_event,
    iter_text,
    parse_event_line,
    read_text,
    write_text,
)
from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    CreateEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
    UnlinkEvent,
)

ALL_EVENT_SAMPLES = [
    OpenEvent(time=1.25, open_id=7, file_id=3, user_id=2, size=4096,
              mode=AccessMode.READ_WRITE, created=True, new_file=True,
              initial_pos=4096),
    CloseEvent(time=2.5, open_id=7, final_pos=8192),
    SeekEvent(time=2.0, open_id=7, prev_pos=100, new_pos=4000),
    CreateEvent(time=0.5, file_id=3, user_id=2),
    UnlinkEvent(time=3.0, file_id=3),
    TruncateEvent(time=3.5, file_id=4, new_length=1024),
    ExecEvent(time=4.0, file_id=5, user_id=2, size=65536),
]


def sample_log() -> TraceLog:
    return TraceLog.from_events(ALL_EVENT_SAMPLES, name="io-test",
                                description="round trip sample")


class TestTextFormat:
    @pytest.mark.parametrize("event", ALL_EVENT_SAMPLES, ids=lambda e: e.kind)
    def test_event_round_trip(self, event):
        assert parse_event_line(format_event(event)) == event

    def test_log_round_trip_via_file(self, tmp_path):
        path = tmp_path / "t.trace"
        log = sample_log()
        write_text(log, str(path))
        loaded = read_text(str(path))
        assert loaded.name == "io-test"
        assert loaded.description == "round trip sample"
        assert loaded.events == log.events

    def test_log_round_trip_via_stream(self):
        buf = io.StringIO()
        write_text(sample_log(), buf)
        buf.seek(0)
        assert read_text(buf).events == sample_log().events

    def test_iter_text_streams_events(self):
        buf = io.StringIO()
        write_text(sample_log(), buf)
        buf.seek(0)
        assert list(iter_text(buf)) == sample_log().events

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\n" + format_event(ALL_EVENT_SAMPLES[4]) + "\n"
        log = read_text(io.StringIO(text))
        assert len(log) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown event kind"):
            parse_event_line("mystery\t1.0\t2")

    def test_malformed_record_rejected(self):
        with pytest.raises(TraceFormatError, match="malformed"):
            parse_event_line("open\t1.0\tnot-an-int")

    def test_times_written_with_tick_precision(self):
        line = format_event(UnlinkEvent(time=1.239, file_id=1))
        assert "\t1.24\t" in line


class TestBinaryFormat:
    def test_log_round_trip_via_file(self, tmp_path):
        path = tmp_path / "t.btrace"
        log = sample_log()
        write_binary(log, str(path))
        loaded = read_binary(str(path))
        assert loaded.name == log.name
        assert loaded.description == log.description
        assert loaded.events == log.events

    def test_round_trip_via_stream(self):
        buf = io.BytesIO()
        write_binary(sample_log(), buf)
        buf.seek(0)
        assert read_binary(buf).events == sample_log().events

    def test_bad_magic_rejected(self):
        with pytest.raises(BinaryTraceError, match="magic"):
            read_binary(io.BytesIO(b"NOTATRACEFILE ..."))

    def test_truncated_file_rejected(self):
        buf = io.BytesIO()
        write_binary(sample_log(), buf)
        data = buf.getvalue()
        with pytest.raises(BinaryTraceError, match="truncated"):
            read_binary(io.BytesIO(data[: len(data) - 3]))

    def test_binary_is_smaller_than_text(self):
        events = ALL_EVENT_SAMPLES * 100
        log = TraceLog.from_events(events)
        tbuf = io.StringIO()
        write_text(log, tbuf)
        bbuf = io.BytesIO()
        write_binary(log, bbuf)
        assert len(bbuf.getvalue()) < len(tbuf.getvalue().encode())

    def test_empty_log_round_trips(self):
        buf = io.BytesIO()
        write_binary(TraceLog(name="empty"), buf)
        buf.seek(0)
        loaded = read_binary(buf)
        assert loaded.name == "empty"
        assert len(loaded) == 0


class TestTimeEncoding:
    """The u32 centisecond field: overflow rejection and quantization."""

    @staticmethod
    def _log_at(time: float) -> TraceLog:
        return TraceLog.from_events(
            [UnlinkEvent(time=time, file_id=1)], name="clock"
        )

    def test_max_time_round_trips(self):
        buf = io.BytesIO()
        write_binary(self._log_at(MAX_TRACE_TIME), buf)
        buf.seek(0)
        assert read_binary(buf).events[0].time == pytest.approx(
            MAX_TRACE_TIME
        )

    def test_overflowing_time_rejected(self):
        with pytest.raises(BinaryTraceError, match="centisecond"):
            write_binary(self._log_at(MAX_TRACE_TIME + 0.01), io.BytesIO())

    def test_negative_time_rejected(self):
        with pytest.raises(BinaryTraceError, match="centisecond"):
            write_binary(self._log_at(-1.0), io.BytesIO())

    def test_columns_writer_rejects_overflow_too(self):
        cols = TraceColumns.from_log(self._log_at(MAX_TRACE_TIME + 1.0))
        with pytest.raises(BinaryTraceError, match="centisecond"):
            write_binary_columns(cols, io.BytesIO())

    def test_incremental_writer_rejects_overflow_too(self):
        with BinaryTraceWriter(io.BytesIO(), name="t") as writer:
            with pytest.raises(BinaryTraceError, match="centisecond"):
                writer.write(UnlinkEvent(time=MAX_TRACE_TIME + 1.0, file_id=1))

    def test_error_names_the_offending_time(self):
        with pytest.raises(BinaryTraceError, match="rebase the trace clock"):
            write_binary(self._log_at(1e12), io.BytesIO())

    def test_round_trip_keeps_times_monotone_at_10ms_boundary(self):
        # Times already on the 10 ms grid can still differ in the last
        # bit from the decoded cs/100.0 value; what must hold is that a
        # non-decreasing trace stays non-decreasing after a round trip,
        # and that a second round trip is byte-identical to the first.
        times = [round(k * 0.01, 10) for k in range(0, 2000, 7)]
        log = TraceLog.from_events(
            [UnlinkEvent(time=t, file_id=k) for k, t in enumerate(times)],
            name="grid",
        )
        buf = io.BytesIO()
        write_binary(log, buf)
        buf.seek(0)
        once = read_binary(buf)
        decoded = [e.time for e in once.events]
        assert all(a <= b for a, b in zip(decoded, decoded[1:]))
        again = io.BytesIO()
        write_binary(once, again)
        assert again.getvalue() == buf.getvalue()


class TestTruncationDiagnostics:
    """Damaged binary traces must be diagnosed with byte offsets, never a
    bare struct.error / IndexError."""

    @staticmethod
    def _bytes() -> bytes:
        buf = io.BytesIO()
        write_binary(sample_log(), buf)
        return buf.getvalue()

    def test_header_truncation_names_field_and_offset(self):
        data = self._bytes()
        with pytest.raises(BinaryTraceError, match=r"the magic at byte 0"):
            read_binary(io.BytesIO(data[:3]))
        # Magic is 8 bytes; cutting right after it starves the name
        # length field.
        with pytest.raises(
            BinaryTraceError, match=r"the name length at byte 8"
        ):
            read_binary(io.BytesIO(data[:8]))
        with pytest.raises(
            BinaryTraceError, match=r"the trace name at byte 10"
        ):
            read_binary(io.BytesIO(data[:12]))

    def test_event_truncation_names_offset(self):
        data = self._bytes()
        # Cutting mid-record starves a fixed-width field read; the
        # diagnostic names the file offset where bytes ran out.
        with pytest.raises(
            BinaryTraceError, match=r"wanted \d+ bytes for .* at byte \d+"
        ):
            read_binary(io.BytesIO(data[: len(data) - 3]))
        # Cutting exactly at a record boundary starves the next tag and
        # names the event ordinal too.  The boundary is where a file
        # holding only the first six events would end (the header is the
        # same size: only the count value differs).
        six = io.BytesIO()
        write_binary(
            TraceLog.from_events(
                ALL_EVENT_SAMPLES[:6], name="io-test",
                description="round trip sample",
            ),
            six,
        )
        cut = len(six.getvalue())
        with pytest.raises(
            BinaryTraceError, match=r"the tag of event 7 of 7 at byte \d+"
        ):
            read_binary(io.BytesIO(data[:cut]))

    def test_columnar_reader_reports_offsets_too(self):
        data = self._bytes()
        with pytest.raises(
            BinaryTraceError, match=r"event \d+ of 7 is incomplete at byte \d+"
        ):
            read_binary_columns(io.BytesIO(data[: len(data) - 3]))

    def test_inflated_count_is_a_diagnostic_not_memoryerror(self):
        import struct as _struct

        log = sample_log()
        raw = bytearray(self._bytes())
        # The u32 count follows magic, u16+name, u16+desc.
        name = log.name.encode()
        desc = log.description.encode()
        idx = raw.index(name) + len(name) + 2 + len(desc)
        _struct.pack_into("<I", raw, idx, 10_000_000)
        with pytest.raises(BinaryTraceError, match="header claims 10000000"):
            read_binary_columns(io.BytesIO(bytes(raw)))


class TestIterBinary:
    """The streaming event reader behind corpus packing."""

    def _path(self, tmp_path) -> str:
        path = tmp_path / "t.btrace"
        write_binary(sample_log(), str(path))
        return str(path)

    def test_streams_same_events_as_read_binary(self, tmp_path):
        path = self._path(tmp_path)
        with iter_binary(path) as stream:
            assert stream.name == "io-test"
            assert stream.description == "round trip sample"
            assert stream.count == 7
            assert list(stream) == read_binary(path).events

    def test_accepts_open_file_object(self):
        buf = io.BytesIO()
        write_binary(sample_log(), buf)
        buf.seek(0)
        stream = iter_binary(buf)
        assert list(stream) == sample_log().events
        stream.close()
        assert not buf.closed  # not owned, so not closed

    def test_owned_handle_closed_on_exit(self, tmp_path):
        path = self._path(tmp_path)
        with iter_binary(path) as stream:
            fh = stream._fh
        assert fh.closed

    def test_truncation_mid_stream_is_diagnosed(self, tmp_path):
        path = tmp_path / "cut.btrace"
        buf = io.BytesIO()
        write_binary(sample_log(), buf)
        path.write_bytes(buf.getvalue()[:-3])
        with iter_binary(str(path)) as stream:
            with pytest.raises(
                BinaryTraceError, match=r"wanted \d+ bytes for .* at byte \d+"
            ):
                list(stream)

    def test_bad_header_closes_owned_handle(self, tmp_path):
        path = tmp_path / "bad.btrace"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(BinaryTraceError, match="magic"):
            iter_binary(str(path))
