"""Tests for repro.trace.log."""

import pytest

from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    OpenEvent,
    UnlinkEvent,
)


def _open(t, oid=1, fid=1, uid=1, size=0, mode=AccessMode.READ):
    return OpenEvent(
        time=t, open_id=oid, file_id=fid, user_id=uid, size=size, mode=mode
    )


class TestAppend:
    def test_append_keeps_order(self):
        log = TraceLog()
        log.append(_open(1.0))
        log.append(CloseEvent(time=2.0, open_id=1, final_pos=0))
        assert len(log) == 2

    def test_append_same_time_allowed(self):
        log = TraceLog()
        log.append(_open(1.0))
        log.append(CloseEvent(time=1.0, open_id=1, final_pos=0))
        assert len(log) == 2

    def test_append_out_of_order_rejected(self):
        log = TraceLog()
        log.append(_open(2.0))
        with pytest.raises(ValueError, match="time order"):
            log.append(CloseEvent(time=1.0, open_id=1, final_pos=0))

    def test_extend(self):
        log = TraceLog()
        log.extend([_open(1.0), CloseEvent(time=1.5, open_id=1, final_pos=0)])
        assert len(log) == 2


class TestFromEvents:
    def test_sorts_by_time(self):
        events = [
            CloseEvent(time=5.0, open_id=1, final_pos=0),
            _open(1.0),
        ]
        log = TraceLog.from_events(events)
        assert log.events[0].time == 1.0

    def test_name_and_description_kept(self):
        log = TraceLog.from_events([], name="X", description="d")
        assert log.name == "X"
        assert log.description == "d"

    def test_same_time_events_keep_input_order(self):
        # The sort must be stable: an open and its same-tick close arrive
        # in causal order and must stay that way.
        events = [
            _open(1.0),
            CloseEvent(time=1.0, open_id=1, final_pos=0),
            UnlinkEvent(time=1.0, file_id=1),
        ]
        log = TraceLog.from_events(events)
        assert log.events == events

    def test_same_time_block_keeps_order_after_sorting(self):
        # Even when out-of-order events elsewhere force a real sort, the
        # equal-time block must preserve its relative input order.
        tied = [
            _open(2.0),
            CloseEvent(time=2.0, open_id=1, final_pos=0),
            UnlinkEvent(time=2.0, file_id=1),
        ]
        log = TraceLog.from_events([*tied, UnlinkEvent(time=1.0, file_id=9)])
        assert log.events[0].time == 1.0
        assert log.events[1:] == tied


class TestDerived:
    def test_empty_log_properties(self):
        log = TraceLog()
        assert log.duration == 0.0
        assert log.start_time == 0.0
        assert log.end_time == 0.0

    def test_duration(self):
        log = TraceLog.from_events(
            [_open(2.0), CloseEvent(time=12.0, open_id=1, final_pos=0)]
        )
        assert log.duration == pytest.approx(10.0)

    def test_count_by_kind(self):
        log = TraceLog.from_events(
            [_open(1.0), _open(2.0, oid=2), UnlinkEvent(time=3.0, file_id=1)]
        )
        assert log.count("open") == 2
        assert log.count("unlink") == 1
        assert log.count("seek") == 0

    def test_of_kind(self):
        log = TraceLog.from_events([_open(1.0), UnlinkEvent(time=2.0, file_id=9)])
        unlinks = log.of_kind("unlink")
        assert len(unlinks) == 1
        assert unlinks[0].file_id == 9

    def test_user_ids(self):
        log = TraceLog.from_events([_open(1.0, uid=3), _open(2.0, oid=2, uid=8)])
        assert log.user_ids() == {3, 8}

    def test_file_ids(self):
        log = TraceLog.from_events(
            [_open(1.0, fid=3), UnlinkEvent(time=2.0, file_id=44)]
        )
        assert log.file_ids() == {3, 44}

    def test_iteration_and_indexing(self):
        log = TraceLog.from_events([_open(1.0), _open(2.0, oid=2)])
        assert [e.time for e in log] == [1.0, 2.0]
        assert log[0].time == 1.0
        assert log[-1].open_id == 2


class TestSlice:
    def test_slice_half_open_interval(self):
        log = TraceLog.from_events([_open(1.0), _open(2.0, oid=2), _open(3.0, oid=3)])
        sliced = log.slice(1.0, 3.0)
        assert [e.open_id for e in sliced] == [1, 2]

    def test_slice_names_the_window(self):
        log = TraceLog(name="A5")
        assert "A5" in log.slice(0, 10).name

    def test_summary_line_mentions_name_and_count(self):
        log = TraceLog.from_events([_open(0.0)], name="E3")
        line = log.summary_line()
        assert "E3" in line and "1 events" in line
