"""Tests for repro.trace.ops (filter/merge/shift/renumber)."""

import pytest

from repro.trace.log import TraceLog
from repro.trace.ops import (
    filter_files,
    filter_users,
    merge,
    renumber_opens,
    shift_time,
)
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    UnlinkEvent,
)
from repro.trace.validate import validate


def _trace_two_users() -> TraceLog:
    return TraceLog.from_events([
        OpenEvent(time=0.0, open_id=1, file_id=10, user_id=1, size=100,
                  mode=AccessMode.READ),
        OpenEvent(time=0.5, open_id=2, file_id=20, user_id=2, size=100,
                  mode=AccessMode.WRITE, created=True, new_file=True),
        SeekEvent(time=1.0, open_id=1, prev_pos=50, new_pos=80),
        CloseEvent(time=2.0, open_id=1, final_pos=100),
        CloseEvent(time=2.5, open_id=2, final_pos=60),
        ExecEvent(time=3.0, file_id=30, user_id=2, size=4096),
        UnlinkEvent(time=4.0, file_id=20),
    ])


class TestFilterUsers:
    def test_keeps_only_that_users_opens(self):
        out = filter_users(_trace_two_users(), [1])
        assert out.count("open") == 1
        assert out.of_kind("open")[0].user_id == 1

    def test_drags_seeks_and_closes_along(self):
        out = filter_users(_trace_two_users(), [1])
        assert out.count("seek") == 1
        assert out.count("close") == 1

    def test_unlink_kept_when_user_touched_file(self):
        out = filter_users(_trace_two_users(), [2])
        assert out.count("unlink") == 1

    def test_unlink_dropped_for_other_user(self):
        out = filter_users(_trace_two_users(), [1])
        assert out.count("unlink") == 0

    def test_exec_follows_user(self):
        assert filter_users(_trace_two_users(), [2]).count("exec") == 1
        assert filter_users(_trace_two_users(), [1]).count("exec") == 0

    def test_result_validates(self):
        assert validate(filter_users(_trace_two_users(), [1])).ok


class TestFilterFiles:
    def test_keeps_only_those_files(self):
        out = filter_files(_trace_two_users(), [20])
        assert out.count("open") == 1
        assert out.count("unlink") == 1
        assert out.count("seek") == 0

    def test_result_validates(self):
        assert validate(filter_files(_trace_two_users(), [10])).ok


class TestShiftTime:
    def test_shifts_all_events(self):
        out = shift_time(_trace_two_users(), 100.0)
        assert out.start_time == pytest.approx(100.0)
        assert out.end_time == pytest.approx(104.0)

    def test_preserves_event_payload(self):
        out = shift_time(_trace_two_users(), 10.0)
        opens = out.of_kind("open")
        assert opens[1].created and opens[1].new_file


class TestRenumber:
    def test_ids_become_dense_from_bases(self):
        out = renumber_opens(_trace_two_users(), open_id_base=100,
                             file_id_base=200, user_id_base=300)
        opens = out.of_kind("open")
        assert {o.open_id for o in opens} == {100, 101}
        assert {o.file_id for o in opens} == {200, 201}
        assert {o.user_id for o in opens} == {300, 301}

    def test_close_follows_its_open(self):
        out = renumber_opens(_trace_two_users())
        assert validate(out).ok

    def test_consistent_file_ids_across_kinds(self):
        out = renumber_opens(_trace_two_users())
        open2 = out.of_kind("open")[1]
        unlink = out.of_kind("unlink")[0]
        assert unlink.file_id == open2.file_id


class TestMerge:
    def test_merge_is_time_ordered_and_valid(self):
        a = _trace_two_users()
        b = shift_time(_trace_two_users(), 0.25)
        merged = merge([a, b])
        times = [e.time for e in merged]
        assert times == sorted(times)
        assert validate(merged).ok

    def test_merge_preserves_all_events(self):
        a = _trace_two_users()
        merged = merge([a, a])
        assert len(merged) == 2 * len(a)

    def test_merged_id_spaces_disjoint(self):
        a = _trace_two_users()
        merged = merge([a, a])
        opens = merged.of_kind("open")
        assert len({o.open_id for o in opens}) == len(opens)
