"""Tests for repro.trace.records."""

import pytest

from repro.trace.records import (
    AccessMode,
    CloseEvent,
    EVENT_KINDS,
    ExecEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
    UnlinkEvent,
    quantize_time,
)


class TestAccessMode:
    def test_read_is_readable_not_writable(self):
        assert AccessMode.READ.readable
        assert not AccessMode.READ.writable

    def test_write_is_writable_not_readable(self):
        assert AccessMode.WRITE.writable
        assert not AccessMode.WRITE.readable

    def test_read_write_is_both(self):
        assert AccessMode.READ_WRITE.readable
        assert AccessMode.READ_WRITE.writable

    @pytest.mark.parametrize("mode", list(AccessMode))
    def test_label_round_trip(self, mode):
        assert AccessMode.from_label(mode.label) is mode

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            AccessMode.from_label("rwx")


class TestQuantizeTime:
    def test_rounds_to_centiseconds(self):
        assert quantize_time(1.234567) == pytest.approx(1.23)

    def test_rounds_half_up_to_nearest_tick(self):
        assert quantize_time(0.015) == pytest.approx(0.02)

    def test_zero(self):
        assert quantize_time(0.0) == 0.0

    def test_already_quantized_unchanged(self):
        assert quantize_time(5.25) == pytest.approx(5.25)


class TestEventKinds:
    def test_all_seven_kinds_registered(self):
        assert set(EVENT_KINDS) == {
            "open", "close", "seek", "create", "unlink", "trunc", "exec",
        }

    def test_kind_tags_match_classes(self):
        for kind, cls in EVENT_KINDS.items():
            assert cls.kind == kind

    def test_events_are_frozen(self):
        event = UnlinkEvent(time=1.0, file_id=2)
        with pytest.raises(AttributeError):
            event.file_id = 3

    def test_open_event_defaults(self):
        event = OpenEvent(
            time=0.0, open_id=1, file_id=1, user_id=1, size=10,
            mode=AccessMode.READ,
        )
        assert not event.created
        assert not event.new_file
        assert event.initial_pos == 0

    def test_events_compare_by_value(self):
        a = CloseEvent(time=1.0, open_id=5, final_pos=100)
        b = CloseEvent(time=1.0, open_id=5, final_pos=100)
        assert a == b

    def test_seek_event_carries_both_positions(self):
        seek = SeekEvent(time=2.0, open_id=1, prev_pos=10, new_pos=90)
        assert (seek.prev_pos, seek.new_pos) == (10, 90)

    def test_exec_event_has_size_for_paging(self):
        ev = ExecEvent(time=1.0, file_id=3, user_id=9, size=24576)
        assert ev.size == 24576

    def test_truncate_event(self):
        ev = TruncateEvent(time=1.0, file_id=3, new_length=0)
        assert ev.new_length == 0
