"""Tests for repro.trace.stats (Table III) and intervals (Section 3.1)."""

import pytest

from repro.trace.intervals import event_intervals, interval_stats
from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    OpenEvent,
    SeekEvent,
    UnlinkEvent,
)
from repro.trace.stats import compute_stats, total_bytes_transferred


def _open(t, oid, size=0, mode=AccessMode.READ, created=False, new_file=False,
          pos=0):
    return OpenEvent(time=t, open_id=oid, file_id=oid, user_id=1, size=size,
                     mode=mode, created=created, new_file=new_file,
                     initial_pos=pos)


class TestBytesTransferred:
    def test_whole_file_read(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=1000),
            CloseEvent(time=1.0, open_id=1, final_pos=1000),
        ])
        assert total_bytes_transferred(log) == 1000

    def test_seek_splits_runs(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=10_000),
            SeekEvent(time=0.5, open_id=1, prev_pos=2000, new_pos=8000),
            CloseEvent(time=1.0, open_id=1, final_pos=9000),
        ])
        # 0..2000 before the seek, 8000..9000 after = 3000 bytes.
        assert total_bytes_transferred(log) == 3000

    def test_append_counts_from_initial_pos(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=500, mode=AccessMode.WRITE, pos=500),
            CloseEvent(time=1.0, open_id=1, final_pos=700),
        ])
        assert total_bytes_transferred(log) == 200

    def test_orphan_close_ignored(self):
        log = TraceLog.from_events([CloseEvent(time=1.0, open_id=5, final_pos=900)])
        assert total_bytes_transferred(log) == 0

    def test_no_transfer_zero(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=100),
            CloseEvent(time=1.0, open_id=1, final_pos=0),
        ])
        assert total_bytes_transferred(log) == 0


class TestComputeStats:
    def test_new_file_counts_as_create(self):
        log = TraceLog.from_events([
            _open(0.0, 1, created=True, new_file=True),
            CloseEvent(time=0.1, open_id=1, final_pos=10),
        ])
        stats = compute_stats(log)
        assert stats.kind_counts["create"] == 1
        assert stats.kind_counts.get("open", 0) == 0

    def test_truncating_open_of_existing_file_counts_as_open(self):
        log = TraceLog.from_events([
            _open(0.0, 1, created=True, new_file=False),
            CloseEvent(time=0.1, open_id=1, final_pos=10),
        ])
        stats = compute_stats(log)
        assert stats.kind_counts.get("create", 0) == 0
        assert stats.kind_counts["open"] == 1

    def test_percentages_sum_to_100(self, small_trace):
        stats = compute_stats(small_trace)
        total = sum(stats.kind_percent(k) for k in stats.kind_counts)
        assert total == pytest.approx(100.0, abs=0.5)

    def test_duration_hours(self):
        log = TraceLog.from_events([
            _open(0.0, 1),
            UnlinkEvent(time=7200.0, file_id=1),
        ])
        assert compute_stats(log).duration_hours == pytest.approx(2.0)

    def test_render_contains_paper_rows(self, small_trace):
        text = compute_stats(small_trace).render()
        for label in ("Duration (hours)", "Number of trace records",
                      "create events", "execve"):
            assert label in text

    def test_trace_file_size_positive(self, small_trace):
        assert compute_stats(small_trace).trace_file_mbytes > 0


class TestIntervals:
    def test_intervals_within_one_open(self):
        log = TraceLog.from_events([
            _open(0.0, 1, size=100),
            SeekEvent(time=2.0, open_id=1, prev_pos=10, new_pos=20),
            CloseEvent(time=5.0, open_id=1, final_pos=30),
        ])
        assert event_intervals(log) == [2.0, 3.0]

    def test_intervals_do_not_cross_opens(self):
        log = TraceLog.from_events([
            _open(0.0, 1),
            CloseEvent(time=1.0, open_id=1, final_pos=0),
            _open(100.0, 2),
            CloseEvent(time=101.0, open_id=2, final_pos=0),
        ])
        assert event_intervals(log) == [1.0, 1.0]

    def test_stats_quantiles_ordered(self, small_trace):
        stats = interval_stats(small_trace)
        assert 0 <= stats.p75 <= stats.p90 <= stats.p99 <= stats.maximum

    def test_paper_bound_holds_on_synthetic_trace(self, medium_trace):
        # Section 3.1: the whole point of no-read-write tracing is that the
        # bounds are tight; our workload keeps 90% of gaps under 10 s.
        stats = interval_stats(medium_trace)
        assert stats.p75 < 0.5
        assert stats.p90 < 10.0

    def test_empty_trace(self):
        stats = interval_stats(TraceLog())
        assert stats.count == 0
        assert stats.maximum == 0.0
