"""Tests for repro.trace.validate."""

from array import array

from repro.trace.columns import KIND_CLOSE, KIND_OPEN, TraceColumns
from repro.trace.io_binary import MAX_TRACE_TIME
from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
)
from repro.trace.validate import validate, validate_columns


def _open(t, oid, size=100, pos=0):
    return OpenEvent(time=t, open_id=oid, file_id=oid, user_id=1, size=size,
                     mode=AccessMode.READ, initial_pos=pos)


def test_clean_trace_passes(simple_trace):
    report = validate(simple_trace)
    assert report.ok
    assert report.event_count == len(simple_trace)
    assert report.open_count == 3
    assert report.unmatched_opens == 0


def test_unclosed_open_counted_not_flagged():
    log = TraceLog.from_events([_open(1.0, 1)])
    report = validate(log)
    assert report.ok
    assert report.unmatched_opens == 1


def test_double_open_id_flagged():
    log = TraceLog.from_events([_open(1.0, 1), _open(2.0, 1)])
    report = validate(log)
    assert not report.ok
    assert any("opened twice" in p for p in report.problems)


def test_close_unknown_open_flagged():
    log = TraceLog.from_events([CloseEvent(time=1.0, open_id=9, final_pos=0)])
    assert any("unknown open_id" in p for p in validate(log).problems)


def test_double_close_flagged():
    log = TraceLog.from_events([
        _open(1.0, 1),
        CloseEvent(time=2.0, open_id=1, final_pos=0),
        CloseEvent(time=3.0, open_id=1, final_pos=0),
    ])
    problems = validate(log).problems
    assert any("closed twice" in p for p in problems)


def test_open_id_reuse_after_close_flagged():
    log = TraceLog.from_events([
        _open(1.0, 1),
        CloseEvent(time=2.0, open_id=1, final_pos=0),
        _open(3.0, 1),
    ])
    assert any("reused after close" in p for p in validate(log).problems)


def test_seek_unknown_open_flagged():
    log = TraceLog.from_events([SeekEvent(time=1.0, open_id=5, prev_pos=0, new_pos=1)])
    assert any("unknown open_id" in p for p in validate(log).problems)


def test_time_going_backwards_flagged():
    # Bypass TraceLog.append ordering check by constructing directly.
    log = TraceLog(events=[_open(2.0, 1), CloseEvent(time=1.0, open_id=1, final_pos=0)])
    assert any("precedes" in p for p in validate(log).problems)


def test_initial_pos_beyond_size_flagged():
    log = TraceLog.from_events([_open(1.0, 1, size=10, pos=20)])
    assert any("beyond" in p for p in validate(log).problems)


def test_negative_truncate_flagged():
    log = TraceLog.from_events([TruncateEvent(time=1.0, file_id=1, new_length=-1)])
    assert any("negative" in p for p in validate(log).problems)


def test_problem_list_bounded():
    events = [CloseEvent(time=float(i), open_id=i, final_pos=0) for i in range(1, 200)]
    report = validate(TraceLog.from_events(events))
    assert len(report.problems) <= report.max_problems + 1


def test_report_str_mentions_status(simple_trace):
    assert "OK" in str(validate(simple_trace))


def test_generated_trace_validates(small_trace):
    assert validate(small_trace).ok


# -- columnar validation ----------------------------------------------------


def _columns(*rows) -> TraceColumns:
    """Build a TraceColumns from raw (kind, time, oid, fid, uid, size,
    pos, flags) tuples — lets tests construct states the event
    dataclasses cannot express (bad flags, unknown kinds)."""
    cols = list(zip(*rows)) if rows else [[]] * 8
    return TraceColumns(
        kinds=bytes(cols[0]),
        times=array("d", cols[1]),
        open_ids=array("q", cols[2]),
        file_ids=array("q", cols[3]),
        user_ids=array("q", cols[4]),
        sizes=array("q", cols[5]),
        positions=array("q", cols[6]),
        flags=bytes(cols[7]),
    )


def test_columns_view_of_clean_trace_validates(simple_trace):
    cols = TraceColumns.from_log(simple_trace)
    report = validate_columns(cols)
    assert report.ok
    assert report.event_count == len(simple_trace)
    assert report.open_count == 3


def test_validate_dispatches_on_columns(small_trace):
    cols = TraceColumns.from_log(small_trace)
    by_cols = validate(cols)
    by_log = validate(small_trace)
    assert by_cols.ok == by_log.ok
    assert by_cols.event_count == by_log.event_count
    assert by_cols.open_count == by_log.open_count
    assert by_cols.unmatched_opens == by_log.unmatched_opens


def test_columns_shared_invariants_match_object_path():
    # Same violations, same problems, whichever view is validated.
    log = TraceLog(events=[
        _open(2.0, 1),
        CloseEvent(time=1.0, open_id=1, final_pos=0),
        CloseEvent(time=1.5, open_id=9, final_pos=0),
    ])
    by_log = validate(log)
    by_cols = validate_columns(TraceColumns.from_log(log))
    assert by_cols.problems == by_log.problems


def test_time_beyond_u32_centiseconds_flagged():
    cols = _columns(
        (KIND_OPEN, MAX_TRACE_TIME + 1.0, 1, 1, 1, 10, 0, int(AccessMode.READ)),
    )
    problems = validate_columns(cols).problems
    assert any("u32" in p and "centisecond" in p for p in problems)


def test_time_in_u32_range_passes():
    cols = _columns(
        (KIND_OPEN, MAX_TRACE_TIME - 1.0, 1, 1, 1, 10, 0, int(AccessMode.READ)),
    )
    assert validate_columns(cols).ok


def test_open_flag_byte_without_mode_bits_flagged():
    cols = _columns((KIND_OPEN, 1.0, 1, 1, 1, 10, 0, 0x4))
    problems = validate_columns(cols).problems
    assert any("no mode bits" in p for p in problems)


def test_open_flag_byte_with_undefined_bits_flagged():
    cols = _columns((KIND_OPEN, 1.0, 1, 1, 1, 10, 0, 0x10 | int(AccessMode.READ)))
    problems = validate_columns(cols).problems
    assert any("undefined bits" in p for p in problems)


def test_nonzero_flags_on_non_open_row_flagged():
    cols = _columns(
        (KIND_OPEN, 1.0, 1, 1, 1, 10, 0, int(AccessMode.READ)),
        (KIND_CLOSE, 2.0, 1, 0, 0, 0, 0, 0x1),
    )
    problems = validate_columns(cols).problems
    assert any("non-open row" in p for p in problems)


def test_unknown_kind_tag_flagged():
    cols = _columns((99, 1.0, 0, 0, 0, 0, 0, 0))
    problems = validate_columns(cols).problems
    assert any("unknown kind tag 99" in p for p in problems)


def test_max_problems_configurable_on_both_paths():
    events = [CloseEvent(time=float(i), open_id=i, final_pos=0)
              for i in range(1, 30)]
    log = TraceLog.from_events(events)
    capped = validate(log, max_problems=5)
    assert capped.max_problems == 5
    assert len(capped.problems) == 6  # 5 + truncation marker
    assert capped.truncated
    cols_capped = validate_columns(TraceColumns.from_log(log), max_problems=5)
    assert cols_capped.problems == capped.problems
