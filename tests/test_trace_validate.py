"""Tests for repro.trace.validate."""

from repro.trace.log import TraceLog
from repro.trace.records import (
    AccessMode,
    CloseEvent,
    OpenEvent,
    SeekEvent,
    TruncateEvent,
)
from repro.trace.validate import validate


def _open(t, oid, size=100, pos=0):
    return OpenEvent(time=t, open_id=oid, file_id=oid, user_id=1, size=size,
                     mode=AccessMode.READ, initial_pos=pos)


def test_clean_trace_passes(simple_trace):
    report = validate(simple_trace)
    assert report.ok
    assert report.event_count == len(simple_trace)
    assert report.open_count == 3
    assert report.unmatched_opens == 0


def test_unclosed_open_counted_not_flagged():
    log = TraceLog.from_events([_open(1.0, 1)])
    report = validate(log)
    assert report.ok
    assert report.unmatched_opens == 1


def test_double_open_id_flagged():
    log = TraceLog.from_events([_open(1.0, 1), _open(2.0, 1)])
    report = validate(log)
    assert not report.ok
    assert any("opened twice" in p for p in report.problems)


def test_close_unknown_open_flagged():
    log = TraceLog.from_events([CloseEvent(time=1.0, open_id=9, final_pos=0)])
    assert any("unknown open_id" in p for p in validate(log).problems)


def test_double_close_flagged():
    log = TraceLog.from_events([
        _open(1.0, 1),
        CloseEvent(time=2.0, open_id=1, final_pos=0),
        CloseEvent(time=3.0, open_id=1, final_pos=0),
    ])
    problems = validate(log).problems
    assert any("closed twice" in p for p in problems)


def test_open_id_reuse_after_close_flagged():
    log = TraceLog.from_events([
        _open(1.0, 1),
        CloseEvent(time=2.0, open_id=1, final_pos=0),
        _open(3.0, 1),
    ])
    assert any("reused after close" in p for p in validate(log).problems)


def test_seek_unknown_open_flagged():
    log = TraceLog.from_events([SeekEvent(time=1.0, open_id=5, prev_pos=0, new_pos=1)])
    assert any("unknown open_id" in p for p in validate(log).problems)


def test_time_going_backwards_flagged():
    # Bypass TraceLog.append ordering check by constructing directly.
    log = TraceLog(events=[_open(2.0, 1), CloseEvent(time=1.0, open_id=1, final_pos=0)])
    assert any("precedes" in p for p in validate(log).problems)


def test_initial_pos_beyond_size_flagged():
    log = TraceLog.from_events([_open(1.0, 1, size=10, pos=20)])
    assert any("beyond" in p for p in validate(log).problems)


def test_negative_truncate_flagged():
    log = TraceLog.from_events([TruncateEvent(time=1.0, file_id=1, new_length=-1)])
    assert any("negative" in p for p in validate(log).problems)


def test_problem_list_bounded():
    events = [CloseEvent(time=float(i), open_id=i, final_pos=0) for i in range(1, 200)]
    report = validate(TraceLog.from_events(events))
    assert len(report.problems) <= report.max_problems + 1


def test_report_str_mentions_status(simple_trace):
    assert "OK" in str(validate(simple_trace))


def test_generated_trace_validates(small_trace):
    assert validate(small_trace).ok
