"""Tests for the FFS-style block/fragment allocator."""

import random

import pytest

from repro.unixfs.allocator import BlockAllocator, Extent
from repro.unixfs.errors import EINVAL, ENOSPC
from repro.unixfs.geometry import Geometry

SMALL = Geometry(block_size=4096, frag_size=1024, total_bytes=64 * 4096)


@pytest.fixture
def alloc() -> BlockAllocator:
    return BlockAllocator(SMALL)


class TestBasicAllocation:
    def test_starts_empty(self, alloc):
        assert alloc.allocated_bytes == 0
        assert alloc.free_bytes == SMALL.total_bytes

    def test_grow_small_file_uses_fragments(self, alloc):
        ext = Extent()
        alloc.resize(ext, 1500)
        assert ext.blocks == []
        assert ext.tail_frags == 2
        assert alloc.allocated_bytes == 2 * 1024

    def test_grow_to_exact_block(self, alloc):
        ext = Extent()
        alloc.resize(ext, 4096)
        assert len(ext.blocks) == 1
        assert ext.tail_frags == 0

    def test_grow_multi_block_with_tail(self, alloc):
        ext = Extent()
        alloc.resize(ext, 10_000)
        assert len(ext.blocks) == 2
        assert ext.tail_frags == 2
        assert alloc.allocated_bytes == SMALL.allocated_bytes(10_000)

    def test_shrink_releases_space(self, alloc):
        ext = Extent()
        alloc.resize(ext, 20_000)
        alloc.resize(ext, 100)
        assert alloc.allocated_bytes == 1024
        assert len(ext.blocks) == 0
        assert ext.tail_frags == 1

    def test_release_frees_everything(self, alloc):
        ext = Extent()
        alloc.resize(ext, 12_345)
        alloc.release(ext)
        assert alloc.allocated_bytes == 0

    def test_negative_size_rejected(self, alloc):
        with pytest.raises(EINVAL):
            alloc.resize(Extent(), -5)


class TestFragmentPromotion:
    def test_tail_promoted_when_file_grows_past_block(self, alloc):
        ext = Extent()
        alloc.resize(ext, 1500)  # 2 tail frags
        alloc.resize(ext, 6000)  # 1 full block + 2 tail frags
        assert len(ext.blocks) == 1
        assert ext.tail_frags == 2
        assert alloc.stats.frag_promotions == 1

    def test_growth_within_tail_does_not_promote(self, alloc):
        ext = Extent()
        alloc.resize(ext, 100)
        alloc.resize(ext, 2000)
        assert alloc.stats.frag_promotions == 0
        assert ext.tail_frags == 2


class TestExhaustion:
    def test_enospc_when_full(self, alloc):
        big = Extent()
        alloc.resize(big, SMALL.total_bytes)
        with pytest.raises(ENOSPC):
            alloc.resize(Extent(), 4096)

    def test_space_reusable_after_release(self, alloc):
        big = Extent()
        alloc.resize(big, SMALL.total_bytes)
        alloc.release(big)
        ext = Extent()
        alloc.resize(ext, 4096)  # works again
        assert len(ext.blocks) == 1

    def test_many_small_files_fill_device_densely(self, alloc):
        # 64 blocks * 4 frags = 256 frags; 256 one-frag files must all fit.
        extents = []
        for _ in range(256):
            ext = Extent()
            alloc.resize(ext, 100)
            extents.append(ext)
        assert alloc.free_frags == 0
        with pytest.raises(ENOSPC):
            alloc.resize(Extent(), 100)


class TestAccountingInvariants:
    def test_random_workload_conserves_space(self):
        rng = random.Random(99)
        alloc = BlockAllocator(SMALL)
        extents: dict[int, tuple[Extent, int]] = {}
        for i in range(500):
            if extents and rng.random() < 0.4:
                key = rng.choice(list(extents))
                ext, _size = extents.pop(key)
                alloc.release(ext)
            else:
                ext, size = Extent(), rng.randint(0, 30_000)
                try:
                    alloc.resize(ext, size)
                except ENOSPC:
                    continue
                extents[i] = (ext, size)
            held = sum(
                SMALL.allocated_bytes(size) for _, size in extents.values()
            )
            assert alloc.allocated_bytes == held
        for ext, _size in extents.values():
            alloc.release(ext)
        assert alloc.allocated_bytes == 0

    def test_stats_counters_move(self, alloc):
        ext = Extent()
        alloc.resize(ext, 10_000)
        alloc.release(ext)
        assert alloc.stats.blocks_allocated >= 2
        assert alloc.stats.blocks_freed >= 2
        assert alloc.stats.frag_allocations >= 1
        assert alloc.stats.frag_frees >= 1
