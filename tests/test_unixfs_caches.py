"""Tests for the kernel buffer cache, inode cache and DNLC."""

import pytest

from repro.unixfs.buffercache import BufferCache
from repro.unixfs.errors import EINVAL
from repro.unixfs.inode import InodeCache
from repro.unixfs.namei import Dnlc


class TestBufferCache:
    def test_first_access_misses_then_hits(self):
        cache = BufferCache(capacity_bytes=16 * 4096)
        cache.access(file_id=1, offset=0, length=4096, write=False)
        cache.access(file_id=1, offset=0, length=4096, write=False)
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 1

    def test_range_split_into_blocks(self):
        cache = BufferCache(capacity_bytes=64 * 4096)
        cache.access(file_id=1, offset=0, length=3 * 4096 + 1, write=False)
        assert cache.stats.read_misses == 4

    def test_partial_block_range_counts_edge_blocks(self):
        cache = BufferCache(capacity_bytes=64 * 4096)
        cache.access(file_id=1, offset=4000, length=200, write=False)
        assert cache.stats.read_misses == 2  # straddles blocks 0 and 1

    def test_zero_length_access_is_noop(self):
        cache = BufferCache()
        cache.access(file_id=1, offset=0, length=0, write=True)
        assert cache.stats.accesses == 0

    def test_lru_eviction_order(self):
        cache = BufferCache(capacity_bytes=2 * 4096)
        cache.access(1, 0, 1, write=False)      # file 1 block 0
        cache.access(2, 0, 1, write=False)      # file 2 block 0
        cache.access(1, 0, 1, write=False)      # touch file 1 again
        cache.access(3, 0, 1, write=False)      # evicts file 2 (LRU)
        cache.access(1, 0, 1, write=False)
        assert cache.stats.read_hits == 2  # file1 touch + file1 at the end

    def test_dirty_eviction_costs_writeback(self):
        cache = BufferCache(capacity_bytes=4096)
        cache.access(1, 0, 1, write=True)
        cache.access(2, 0, 1, write=False)  # evicts the dirty block
        assert cache.stats.writebacks == 1

    def test_sync_writes_dirty_blocks_once(self):
        cache = BufferCache(capacity_bytes=16 * 4096)
        cache.access(1, 0, 4096 * 3, write=True)
        assert cache.sync() == 3
        assert cache.sync() == 0

    def test_invalidate_discards_dirty_without_writeback(self):
        cache = BufferCache(capacity_bytes=16 * 4096)
        cache.access(1, 0, 4096 * 2, write=True)
        cache.invalidate_file(1)
        assert cache.stats.invalidations == 2
        assert cache.stats.writebacks == 0
        assert len(cache) == 0

    def test_invalidate_from_block(self):
        cache = BufferCache(capacity_bytes=16 * 4096)
        cache.access(1, 0, 4096 * 3, write=True)
        cache.invalidate_file(1, from_block=2)
        assert len(cache) == 2

    def test_miss_ratio_definition(self):
        cache = BufferCache(capacity_bytes=16 * 4096)
        cache.access(1, 0, 4096, write=False)   # miss
        cache.access(1, 0, 4096, write=False)   # hit
        cache.sync()
        assert cache.stats.miss_ratio == pytest.approx(0.5)

    def test_too_small_cache_rejected(self):
        with pytest.raises(EINVAL):
            BufferCache(capacity_bytes=100, block_size=4096)


class TestInodeCache:
    def test_miss_then_hit(self):
        cache = InodeCache(capacity=4)
        assert cache.touch(1) is False
        assert cache.touch(1) is True
        assert cache.counters.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction(self):
        cache = InodeCache(capacity=2)
        cache.touch(1)
        cache.touch(2)
        cache.touch(1)   # 2 is now LRU
        cache.touch(3)   # evicts 2
        assert cache.touch(2) is False

    def test_invalidate(self):
        cache = InodeCache(capacity=4)
        cache.touch(1)
        cache.invalidate(1)
        assert cache.touch(1) is False

    def test_capacity_must_be_positive(self):
        with pytest.raises(EINVAL):
            InodeCache(capacity=0)


class TestDnlc:
    def test_lookup_miss_then_hit(self):
        dnlc = Dnlc(capacity=8)
        assert dnlc.lookup(2, "passwd") is None
        dnlc.enter(2, "passwd", 17)
        assert dnlc.lookup(2, "passwd") == 17
        assert dnlc.counters.hits == 1
        assert dnlc.counters.misses == 1

    def test_capacity_eviction(self):
        dnlc = Dnlc(capacity=2)
        dnlc.enter(1, "a", 1)
        dnlc.enter(1, "b", 2)
        dnlc.lookup(1, "a")          # "b" is now LRU
        dnlc.enter(1, "c", 3)        # evicts "b"
        assert dnlc.lookup(1, "b") is None
        assert dnlc.lookup(1, "a") == 1

    def test_remove(self):
        dnlc = Dnlc()
        dnlc.enter(1, "x", 5)
        dnlc.remove(1, "x")
        assert dnlc.lookup(1, "x") is None

    def test_purge_inum(self):
        dnlc = Dnlc()
        dnlc.enter(1, "x", 5)
        dnlc.enter(2, "y", 5)
        dnlc.enter(1, "z", 6)
        dnlc.purge_inum(5)
        assert dnlc.lookup(1, "x") is None
        assert dnlc.lookup(2, "y") is None
        assert dnlc.lookup(1, "z") == 6
