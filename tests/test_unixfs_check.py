"""Tests for the fsck-style consistency checker and link/dup syscalls."""

import pytest

from repro.trace.records import AccessMode
from repro.unixfs.check import fsck
from repro.unixfs.errors import EBADF, EEXIST, EISDIR
from repro.workload.generator import generate
from repro.workload.profiles import UCBARPA


class TestLink:
    def test_link_shares_data(self, fs):
        fd = fs.creat("/a")
        fs.write(fd, b"shared")
        fs.close(fd)
        fs.link("/a", "/b")
        assert fs.stat("/b").size == 6
        assert fs.stat("/a").inum == fs.stat("/b").inum
        assert fs.stat("/a").nlink == 2

    def test_data_survives_until_last_unlink(self, fs):
        fd = fs.creat("/a")
        fs.write(fd, b"x" * 100)
        fs.close(fd)
        fs.link("/a", "/b")
        fs.unlink("/a")
        assert fs.stat("/b").size == 100
        assert fs.stat("/b").nlink == 1
        fs.unlink("/b")
        assert fs.allocated_bytes() == 0

    def test_link_to_existing_name_fails(self, fs):
        for name in ("/a", "/b"):
            fd = fs.creat(name)
            fs.close(fd)
        with pytest.raises(EEXIST):
            fs.link("/a", "/b")

    def test_link_directory_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(EISDIR):
            fs.link("/d", "/d2")


class TestDup:
    def test_dup_shares_offset(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"0123456789")
        fd2 = fs.dup(fd)
        fs.lseek(fd, 4)
        assert fs.fds.get(fd2).offset == 4  # same open-file entry
        fs.close(fd)
        fs.write(fd2, b"ab")  # still usable through the duplicate
        fs.close(fd2)
        assert fs.stat("/f").size == 10

    def test_close_traced_once_for_dup_pair(self, traced_fs):
        fs, tracer = traced_fs
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fd2 = fs.dup(fd)
        fs.write(fd, 100)
        fs.close(fd)
        fs.close(fd2)
        assert tracer.log.count("open") == 1
        assert tracer.log.count("close") == 1
        assert tracer.log.of_kind("close")[0].final_pos == 100

    def test_dup_of_closed_fd_fails(self, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        with pytest.raises(EBADF):
            fs.dup(fd)


class TestFsck:
    def test_clean_small_fs(self, fs):
        fs.makedirs("/a/b")
        fd = fs.creat("/a/b/f")
        fs.write(fd, b"x" * 5000)
        fs.close(fd)
        report = fsck(fs)
        assert report.ok, report.problems
        assert report.regular_files == 1
        assert report.directories == 3  # root, a, b

    def test_clean_with_hard_links(self, fs):
        fd = fs.creat("/a")
        fs.write(fd, b"x" * 100)
        fs.close(fd)
        fs.link("/a", "/b")
        assert fsck(fs).ok

    def test_clean_with_unlinked_open_file(self, fs):
        fd = fs.creat("/a")
        fs.write(fd, b"x" * 100)
        fs.unlink("/a")
        report = fsck(fs)
        assert report.ok, report.problems
        fs.close(fd)
        assert fsck(fs).ok

    def test_detects_wrong_nlink(self, fs):
        fd = fs.creat("/a")
        fs.close(fd)
        fs.inodes.get(fs.stat("/a").inum).nlink = 5  # corrupt it
        report = fsck(fs)
        assert not report.ok
        assert any("nlink" in p for p in report.problems)

    def test_detects_dangling_entry(self, fs):
        fs.mkdir("/d")
        fs.inodes.get(fs.stat("/d").inum).entries["ghost"] = 9999
        report = fsck(fs)
        assert any("dangling" in p for p in report.problems)

    def test_detects_size_extent_mismatch(self, fs):
        fd = fs.creat("/a")
        fs.write(fd, b"x" * 5000)
        fs.close(fd)
        fs.inodes.get(fs.stat("/a").inum).size = 123456  # corrupt size
        report = fsck(fs)
        assert any("allocated" in p for p in report.problems)

    def test_clean_after_generated_workload(self):
        result = generate(UCBARPA, seed=13, duration=900.0)
        report = fsck(result.fs)
        assert report.ok, report.problems
        assert report.regular_files > 100

    def test_str_mentions_counts(self, fs):
        assert "inodes" in str(fsck(fs))


class TestFsckErrorPaths:
    """Each named inconsistency class, provoked by targeted corruption."""

    def test_detects_orphan_directory(self, fs):
        fs.mkdir("/d")
        # Drop the parent's entry; the directory inode stays live.
        fs.inodes.get(fs.root_inum).entries.pop("d")
        report = fsck(fs)
        assert any("orphan directory" in p for p in report.problems)

    def test_detects_directory_cycle(self, fs):
        fs.makedirs("/a/b")
        a_inum = fs.stat("/a").inum
        fs.inodes.get(fs.stat("/a/b").inum).entries["loop"] = a_inum
        report = fsck(fs)
        assert any("cycle" in p for p in report.problems)

    def test_detects_directory_with_multiple_parents(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.mkdir("/a/child")
        child_inum = fs.stat("/a/child").inum
        fs.inodes.get(fs.stat("/b").inum).entries["alias"] = child_inum
        report = fsck(fs)
        assert any("multiple parents" in p for p in report.problems)

    def test_detects_dead_inode(self, fs):
        fd = fs.creat("/a")
        fs.close(fd)
        # Unreferenced, nlink 0, not open — but still in the inode table.
        fs.inodes.get(fs.stat("/a").inum).nlink = 0
        fs.inodes.get(fs.root_inum).entries.pop("a")
        report = fsck(fs)
        assert any("dead (nlink 0, not open)" in p for p in report.problems)

    def test_detects_allocator_accounting_drift(self, fs):
        fd = fs.creat("/a")
        fs.write(fd, b"x" * 5000)
        fs.close(fd)
        inum = fs.stat("/a").inum
        # Reassign the extent to a nonexistent inode: the file loses its
        # space, the ghost extent is flagged, and the global accounting
        # still balances against the sum of extents.
        fs._extents[999_999] = fs._extents.pop(inum)
        report = fsck(fs)
        assert any("allocated" in p for p in report.problems)
        assert any("missing inode 999999" in p for p in report.problems)

    def test_detects_open_fd_to_missing_inode(self, fs):
        fd = fs.creat("/a")
        fs.fds.get(fd).inode.inum = 888_888  # no longer a table key
        report = fsck(fs)
        assert any("missing inode" in p for p in report.problems)

    def test_problem_count_matches_report_status(self, fs):
        fs.mkdir("/d")
        fs.inodes.get(fs.stat("/d").inum).entries["ghost"] = 4242
        report = fsck(fs)
        assert not report.ok
        assert "problem(s)" in str(report)
