"""Tests for the syscall layer (repro.unixfs.filesystem)."""

import pytest

from repro.clock import Clock
from repro.trace.records import AccessMode, OpenEvent
from repro.unixfs.content import MemoryContentStore
from repro.unixfs.errors import (
    EBADF,
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
)
from repro.unixfs.filesystem import FileSystem, Whence
from repro.unixfs.inode import FileType
from repro.unixfs.tracer import KernelTracer


class TestDirectories:
    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/usr")
        fs.mkdir("/usr/bin")
        assert fs.listdir("/") == ["usr"]
        assert fs.listdir("/usr") == ["bin"]

    def test_mkdir_missing_parent_fails(self, fs):
        with pytest.raises(ENOENT):
            fs.mkdir("/a/b")

    def test_mkdir_duplicate_fails(self, fs):
        fs.mkdir("/a")
        with pytest.raises(EEXIST):
            fs.mkdir("/a")

    def test_makedirs_creates_chain_idempotently(self, fs):
        fs.makedirs("/a/b/c")
        fs.makedirs("/a/b/c")
        assert fs.stat("/a/b/c").is_dir

    def test_rmdir_empty(self, fs):
        fs.mkdir("/a")
        fs.rmdir("/a")
        assert not fs.exists("/a")

    def test_rmdir_non_empty_fails(self, fs):
        fs.makedirs("/a/b")
        with pytest.raises(ENOTEMPTY):
            fs.rmdir("/a")

    def test_rmdir_root_fails(self, fs):
        with pytest.raises(EINVAL):
            fs.rmdir("/")

    def test_rmdir_on_file_fails(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.close(fd)
        with pytest.raises(ENOTDIR):
            fs.rmdir("/f")

    def test_listdir_on_file_fails(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.close(fd)
        with pytest.raises(ENOTDIR):
            fs.listdir("/f")

    def test_path_through_file_fails(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.close(fd)
        with pytest.raises(ENOTDIR):
            fs.open("/f/x", AccessMode.READ)


class TestOpenCloseReadWrite:
    def test_open_missing_without_create_fails(self, fs):
        with pytest.raises(ENOENT):
            fs.open("/nope", AccessMode.READ)

    def test_create_write_read_back(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.write(fd, b"hello world")
        fs.close(fd)
        fd = fs.open("/f", AccessMode.READ)
        assert fs.read(fd, 100) == b"hello world"
        fs.close(fd)

    def test_read_advances_offset(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.write(fd, b"abcdef")
        fs.close(fd)
        fd = fs.open("/f", AccessMode.READ)
        assert fs.read(fd, 3) == b"abc"
        assert fs.read(fd, 3) == b"def"
        assert fs.read(fd, 3) == b""
        fs.close(fd)

    def test_write_by_count_tracks_size_only(self, clock):
        fs = FileSystem(clock=clock)  # null content store
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.write(fd, 10_000)
        fs.close(fd)
        assert fs.stat("/f").size == 10_000

    def test_read_on_write_only_fd_fails(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        with pytest.raises(EBADF):
            fs.read(fd, 1)
        fs.close(fd)

    def test_write_on_read_only_fd_fails(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.close(fd)
        fd = fs.open("/f", AccessMode.READ)
        with pytest.raises(EBADF):
            fs.write(fd, b"x")
        fs.close(fd)

    def test_closed_fd_rejected(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.close(fd)
        with pytest.raises(EBADF):
            fs.close(fd)
        with pytest.raises(EBADF):
            fs.write(fd, b"x")

    def test_open_truncate_discards_content(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.write(fd, b"old data")
        fs.close(fd)
        fd = fs.open("/f", AccessMode.WRITE, truncate=True)
        fs.close(fd)
        assert fs.stat("/f").size == 0

    def test_truncate_requires_writable_mode(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.close(fd)
        with pytest.raises(EINVAL):
            fs.open("/f", AccessMode.READ, truncate=True)

    def test_append_starts_at_end(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.write(fd, b"12345")
        fs.close(fd)
        fd = fs.open("/f", AccessMode.WRITE, append=True)
        fs.write(fd, b"678")
        fs.close(fd)
        assert fs.stat("/f").size == 8

    def test_creat_truncates_and_opens_write(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"abc")
        fs.close(fd)
        fd2 = fs.creat("/f")
        fs.close(fd2)
        assert fs.stat("/f").size == 0

    def test_open_directory_for_write_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(EISDIR):
            fs.open("/d", AccessMode.WRITE)

    def test_sparse_write_extends_with_zeros(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.lseek(fd, 100)
        fs.write(fd, b"x")
        fs.close(fd)
        assert fs.stat("/f").size == 101
        fd = fs.open("/f", AccessMode.READ)
        data = fs.read(fd, 101)
        assert data[:100] == b"\x00" * 100
        assert data[100:] == b"x"
        fs.close(fd)


class TestSeek:
    def test_seek_set_cur_end(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.write(fd, b"0123456789")
        assert fs.lseek(fd, 2) == 2
        assert fs.lseek(fd, 3, Whence.CUR) == 5
        assert fs.lseek(fd, -1, Whence.END) == 9
        fs.close(fd)

    def test_negative_seek_rejected(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        with pytest.raises(EINVAL):
            fs.lseek(fd, -5)
        fs.close(fd)


class TestUnlinkTruncateRename:
    def test_unlink_removes_file(self, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        fs.unlink("/f")
        assert not fs.exists("/f")

    def test_unlink_directory_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(EISDIR):
            fs.unlink("/d")

    def test_unlinked_open_file_still_usable(self, fs):
        fd = fs.open("/f", AccessMode.READ_WRITE, create=True)
        fs.write(fd, b"data")
        fs.unlink("/f")
        assert not fs.exists("/f")
        fs.lseek(fd, 0)
        assert fs.read(fd, 4) == b"data"
        fs.close(fd)

    def test_unlinked_open_file_space_freed_at_close(self, fs):
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.write(fd, 50_000)
        fs.unlink("/f")
        assert fs.allocated_bytes() > 0
        fs.close(fd)
        assert fs.allocated_bytes() == 0

    def test_truncate_shortens(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"abcdefgh")
        fs.close(fd)
        fs.truncate("/f", 3)
        assert fs.stat("/f").size == 3

    def test_truncate_negative_rejected(self, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        with pytest.raises(EINVAL):
            fs.truncate("/f", -2)

    def test_rename_preserves_file_id_and_content(self, fs):
        fd = fs.creat("/a")
        fs.write(fd, b"payload")
        fs.close(fd)
        before = fs.stat("/a").file_id
        fs.rename("/a", "/b")
        assert not fs.exists("/a")
        assert fs.stat("/b").file_id == before
        fd = fs.open("/b", AccessMode.READ)
        assert fs.read(fd, 10) == b"payload"
        fs.close(fd)

    def test_rename_over_existing_replaces(self, fs):
        for name, data in (("/a", b"new"), ("/b", b"old")):
            fd = fs.creat(name)
            fs.write(fd, data)
            fs.close(fd)
        fs.rename("/a", "/b")
        fd = fs.open("/b", AccessMode.READ)
        assert fs.read(fd, 10) == b"new"
        fs.close(fd)
        assert not fs.exists("/a")


class TestExecAndStat:
    def test_execve_returns_stat(self, fs):
        fd = fs.creat("/bin_ls")
        fs.write(fd, b"x" * 1000)
        fs.close(fd)
        st = fs.execve("/bin_ls", uid=4)
        assert st.size == 1000

    def test_execve_directory_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(EISDIR):
            fs.execve("/d")

    def test_stat_reports_times(self, clock, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        clock.advance(5.0)
        fs.truncate("/f", 0)
        st = fs.stat("/f")
        assert st.mtime == pytest.approx(5.0)
        assert st.ctime == pytest.approx(0.0)

    def test_stat_type_flags(self, fs):
        fs.mkdir("/d")
        fd = fs.creat("/f")
        fs.close(fd)
        assert fs.stat("/d").type is FileType.DIRECTORY
        assert fs.stat("/f").type is FileType.REGULAR


class TestAccountingAndCaches:
    def test_internal_fragmentation_positive_for_odd_sizes(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, 5000)
        fs.close(fd)
        assert fs.logical_bytes() == 5000
        assert fs.allocated_bytes() == 5120  # 1 block + 1 frag
        assert fs.internal_fragmentation() == 120

    def test_buffer_cache_sees_traffic(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"x" * 9000)
        fs.close(fd)
        assert fs.buffer_cache.stats.write_misses == 3

    def test_periodic_sync_runs(self, clock, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"x" * 4096)
        fs.close(fd)
        clock.advance(31.0)
        fs.stat("/f")  # any syscall triggers the periodic sync check
        assert fs.buffer_cache.stats.writebacks >= 1

    def test_dnlc_warm_after_first_lookup(self, fs):
        fs.makedirs("/a/b")
        fd = fs.creat("/a/b/f")
        fs.close(fd)
        before = fs.resolver.dnlc.counters.hits
        fs.stat("/a/b/f")
        assert fs.resolver.dnlc.counters.hits >= before + 3

    def test_syscall_counts_recorded(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"ab")
        fs.close(fd)
        assert fs.syscall_counts["creat"] == 1
        assert fs.syscall_counts["open"] == 1  # creat opens internally
        assert fs.syscall_counts["write"] == 1
        assert fs.syscall_counts["close"] == 1


class TestTracing:
    def test_open_event_flags_new_vs_truncated(self, clock):
        tracer = KernelTracer()
        fs = FileSystem(clock=clock, tracer=tracer)
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.close(fd)
        fd = fs.open("/f", AccessMode.WRITE, truncate=True)
        fs.close(fd)
        opens = [e for e in tracer.log if isinstance(e, OpenEvent)]
        assert opens[0].created and opens[0].new_file
        assert opens[1].created and not opens[1].new_file

    def test_no_events_for_read_write_calls(self, clock):
        tracer = KernelTracer()
        fs = FileSystem(clock=clock, tracer=tracer)
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.write(fd, 1000)
        fs.write(fd, 1000)
        fs.close(fd)
        kinds = [e.kind for e in tracer.log]
        assert kinds == ["open", "close"]

    def test_seek_event_only_on_position_change(self, clock):
        tracer = KernelTracer()
        fs = FileSystem(clock=clock, tracer=tracer)
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.lseek(fd, 0)          # no-op: already at 0
        fs.write(fd, 100)
        fs.lseek(fd, 100)        # no-op: already at 100
        fs.lseek(fd, 40)         # real reposition
        fs.close(fd)
        seeks = tracer.log.of_kind("seek")
        assert len(seeks) == 1
        assert (seeks[0].prev_pos, seeks[0].new_pos) == (100, 40)

    def test_close_records_final_position(self, clock):
        tracer = KernelTracer()
        fs = FileSystem(clock=clock, tracer=tracer)
        fd = fs.open("/f", AccessMode.WRITE, create=True)
        fs.write(fd, 777)
        fs.close(fd)
        assert tracer.log.of_kind("close")[0].final_pos == 777

    def test_trace_times_quantized_and_monotonic(self, clock):
        tracer = KernelTracer()
        fs = FileSystem(clock=clock, tracer=tracer)
        for i in range(5):
            clock.advance(0.003)  # sub-tick steps
            fd = fs.open(f"/f{i}", AccessMode.WRITE, create=True)
            fs.close(fd)
        times = [e.time for e in tracer.log]
        assert times == sorted(times)
        for t in times:
            assert abs(t * 100 - round(t * 100)) < 1e-9
