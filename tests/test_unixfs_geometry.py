"""Tests for repro.unixfs.geometry."""

import pytest

from repro.unixfs.errors import EINVAL
from repro.unixfs.geometry import DEFAULT_GEOMETRY, Geometry


class TestValidation:
    def test_default_is_4k_blocks_1k_frags(self):
        assert DEFAULT_GEOMETRY.block_size == 4096
        assert DEFAULT_GEOMETRY.frag_size == 1024
        assert DEFAULT_GEOMETRY.frags_per_block == 4

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(EINVAL):
            Geometry(block_size=3000)

    def test_non_power_of_two_frag_rejected(self):
        with pytest.raises(EINVAL):
            Geometry(frag_size=700)

    def test_frag_larger_than_block_rejected(self):
        with pytest.raises(EINVAL):
            Geometry(block_size=1024, frag_size=4096)

    def test_more_than_eight_frags_rejected(self):
        with pytest.raises(EINVAL):
            Geometry(block_size=8192, frag_size=512)

    def test_device_must_be_whole_blocks(self):
        with pytest.raises(EINVAL):
            Geometry(total_bytes=4096 * 10 + 1)

    def test_frag_equal_to_block_allowed(self):
        g = Geometry(block_size=4096, frag_size=4096)
        assert g.frags_per_block == 1


class TestAllocationFor:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (0, (0, 0)),
            (1, (0, 1)),
            (1024, (0, 1)),
            (1025, (0, 2)),
            (3072, (0, 3)),
            (3073, (1, 0)),  # 4 frags round up to a full block
            (4096, (1, 0)),
            (4097, (1, 1)),
            (8192, (2, 0)),
            (10_000, (2, 2)),
        ],
    )
    def test_block_frag_split(self, size, expected):
        assert DEFAULT_GEOMETRY.allocation_for(size) == expected

    def test_negative_size_rejected(self):
        with pytest.raises(EINVAL):
            DEFAULT_GEOMETRY.allocation_for(-1)

    def test_allocated_bytes_never_less_than_size(self):
        for size in (0, 1, 511, 1024, 5000, 4096 * 3 + 1):
            assert DEFAULT_GEOMETRY.allocated_bytes(size) >= size

    def test_allocated_bytes_waste_bounded_by_frag(self):
        for size in (1, 511, 1025, 5000, 9999):
            waste = DEFAULT_GEOMETRY.allocated_bytes(size) - size
            assert waste < DEFAULT_GEOMETRY.frag_size

    def test_blocks_and_frags_helpers(self):
        g = DEFAULT_GEOMETRY
        assert g.blocks_for(4097) == 2
        assert g.frags_for(1025) == 2
        assert g.total_blocks * g.block_size == g.total_bytes
        assert g.total_frags == g.total_blocks * g.frags_per_block
