"""Unit tests for substrate pieces covered only indirectly elsewhere:
content stores, the name resolver, inode table and tracer details."""

import pytest

from repro.clock import Clock
from repro.trace.records import AccessMode
from repro.unixfs.content import MemoryContentStore, NullContentStore
from repro.unixfs.errors import EINVAL, ENOENT, ENOTDIR
from repro.unixfs.filesystem import FileSystem
from repro.unixfs.inode import FileType, InodeTable
from repro.unixfs.namei import parent_path, split_path
from repro.unixfs.tracer import KernelTracer, NullTracer


class TestNullContentStore:
    def test_read_returns_zeros_up_to_size(self):
        store = NullContentStore()
        assert store.read(1, 0, 10, file_size=4) == b"\x00" * 4

    def test_read_past_eof_empty(self):
        store = NullContentStore()
        assert store.read(1, 100, 10, file_size=50) == b""

    def test_write_and_remove_are_noops(self):
        store = NullContentStore()
        store.write(1, 0, b"data")
        store.truncate(1, 0)
        store.remove(1)
        assert store.read(1, 0, 4, file_size=0) == b""


class TestMemoryContentStore:
    def test_write_read_round_trip(self):
        store = MemoryContentStore()
        store.write(5, 0, b"hello")
        assert store.read(5, 0, 5, file_size=5) == b"hello"

    def test_sparse_write_zero_fills(self):
        store = MemoryContentStore()
        store.write(5, 10, b"x")
        assert store.read(5, 0, 11, file_size=11) == b"\x00" * 10 + b"x"

    def test_overwrite_in_place(self):
        store = MemoryContentStore()
        store.write(5, 0, b"abcdef")
        store.write(5, 2, b"XY")
        assert store.read(5, 0, 6, file_size=6) == b"abXYef"

    def test_truncate_discards_tail(self):
        store = MemoryContentStore()
        store.write(5, 0, b"abcdef")
        store.truncate(5, 3)
        assert store.read(5, 0, 6, file_size=3) == b"abc"

    def test_read_beyond_written_but_within_size_zero_fills(self):
        store = MemoryContentStore()
        store.write(5, 0, b"ab")
        # File logically extended to 6 (e.g. by a sparse size bump).
        assert store.read(5, 0, 6, file_size=6) == b"ab\x00\x00\x00\x00"

    def test_remove_frees_bytes(self):
        store = MemoryContentStore()
        store.write(5, 0, b"abc")
        assert store.bytes_held() == 3
        store.remove(5)
        assert store.bytes_held() == 0


class TestPathParsing:
    def test_split_path(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []
        assert split_path("/a//b/") == ["a", "b"]

    def test_relative_path_rejected(self):
        with pytest.raises(EINVAL):
            split_path("a/b")
        with pytest.raises(EINVAL):
            split_path("")

    def test_dot_components_rejected(self):
        with pytest.raises(EINVAL):
            split_path("/a/./b")
        with pytest.raises(EINVAL):
            split_path("/a/../b")

    def test_parent_path(self):
        assert parent_path("/a/b/c") == ("/a/b", "c")
        assert parent_path("/top") == ("/", "top")
        with pytest.raises(EINVAL):
            parent_path("/")


class TestResolver:
    def test_resolve_root(self, fs):
        assert fs.resolver.resolve("/").inum == fs.root_inum

    def test_missing_component_raises_enoent(self, fs):
        with pytest.raises(ENOENT):
            fs.resolver.resolve("/missing/x")

    def test_file_as_directory_raises_enotdir(self, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        with pytest.raises(ENOTDIR):
            fs.resolver.resolve("/f/deeper")

    def test_directory_reads_counted_on_misses(self, fs):
        fs.makedirs("/x/y")
        before = fs.resolver.directory_reads
        fs.resolver.dnlc._lru.clear()  # force cold lookups
        fs.resolver.resolve("/x/y")
        assert fs.resolver.directory_reads == before + 2


class TestInodeTable:
    def test_inums_and_file_ids_unique(self):
        table = InodeTable()
        inodes = [table.allocate(FileType.REGULAR, uid=0, now=0.0) for _ in range(10)]
        assert len({i.inum for i in inodes}) == 10
        assert len({i.file_id for i in inodes}) == 10

    def test_free_then_get_raises(self):
        table = InodeTable()
        inode = table.allocate(FileType.REGULAR, uid=0, now=0.0)
        table.free(inode.inum)
        with pytest.raises(ENOENT):
            table.get(inode.inum)

    def test_double_free_rejected(self):
        table = InodeTable()
        inode = table.allocate(FileType.REGULAR, uid=0, now=0.0)
        table.free(inode.inum)
        with pytest.raises(EINVAL):
            table.free(inode.inum)

    def test_contains_and_len(self):
        table = InodeTable()
        inode = table.allocate(FileType.DIRECTORY, uid=0, now=0.0)
        assert inode.inum in table
        assert len(table) == 1


class TestTracer:
    def test_null_tracer_records_nothing(self, clock):
        fs = FileSystem(clock=clock, tracer=NullTracer())
        fd = fs.creat("/f")
        fs.write(fd, 100)
        fs.close(fd)  # nothing observable; just must not crash

    def test_kernel_tracer_open_ids_monotone(self, clock):
        tracer = KernelTracer()
        fs = FileSystem(clock=clock, tracer=tracer)
        fds = [fs.open(f"/f{i}", AccessMode.WRITE, create=True) for i in range(3)]
        for fd in fds:
            fs.close(fd)
        opens = tracer.log.of_kind("open")
        ids = [e.open_id for e in opens]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_time_never_decreases_even_if_quantization_rounds_up(self):
        tracer = KernelTracer()
        # 0.014 quantizes to 0.01; a later call at 0.016 quantizes to 0.02.
        tracer.on_unlink(0.014, file_id=1)
        tracer.on_unlink(0.0149, file_id=2)  # also 0.01: equal is fine
        tracer.on_unlink(0.016, file_id=3)
        times = [e.time for e in tracer.log]
        assert times == sorted(times)
