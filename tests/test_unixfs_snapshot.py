"""Tests for namespace snapshots."""

import pytest

from repro.clock import Clock
from repro.unixfs.check import fsck
from repro.unixfs.filesystem import FileSystem
from repro.unixfs.snapshot import dict_to_tree, load_tree, save_tree, tree_to_dict


def _populated(clock=None):
    fs = FileSystem(clock=clock or Clock())
    fs.makedirs("/usr/u1")
    fs.makedirs("/tmp")
    for path, size, uid in (("/usr/u1/a.c", 5000, 1), ("/usr/u1/b", 0, 1),
                            ("/tmp/big", 2_000_000, 2)):
        fd = fs.creat(path, uid=uid)
        if size:
            fs.write(fd, size)
        fs.close(fd)
    return fs


class TestRoundTrip:
    def test_snapshot_restores_paths_sizes_uids(self):
        original = _populated()
        data = tree_to_dict(original)
        restored = FileSystem(clock=Clock())
        count = dict_to_tree(restored, data)
        assert count == 3
        assert restored.stat("/usr/u1/a.c").size == 5000
        assert restored.stat("/usr/u1/a.c").uid == 1
        assert restored.stat("/tmp/big").size == 2_000_000
        assert restored.stat("/usr/u1/b").size == 0
        assert restored.listdir("/") == original.listdir("/")

    def test_restored_fs_is_consistent(self):
        restored = FileSystem(clock=Clock())
        dict_to_tree(restored, tree_to_dict(_populated()))
        assert fsck(restored).ok

    def test_file_round_trip(self, tmp_path):
        original = _populated()
        path = tmp_path / "tree.json"
        save_tree(original, str(path))
        restored = FileSystem(clock=Clock())
        assert load_tree(restored, str(path)) == 3
        assert restored.logical_bytes() == original.logical_bytes()

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="snapshot"):
            dict_to_tree(FileSystem(clock=Clock()), {"format": "nope"})

    def test_snapshot_of_generated_namespace(self):
        import random

        from repro.workload.namespace import NamespaceConfig, build_namespace

        fs = FileSystem(clock=Clock())
        build_namespace(fs, NamespaceConfig(n_users=2), random.Random(1))
        data = tree_to_dict(fs)
        restored = FileSystem(clock=Clock())
        dict_to_tree(restored, data)
        assert restored.logical_bytes() == fs.logical_bytes()
        assert fsck(restored).ok
