"""Differential tests for the vectorized cache engine and its plumbing.

:mod:`repro.parallel.veccache` claims bit-identity with the one-pass
stack oracle (:func:`~repro.parallel.stack.simulate_stack`) and the
packed replayer; the sweeps and the CLI swap the fast path in silently,
so any divergence would corrupt Figure 5/6/7 exhibits.  These tests pin
that equivalence where the kernel is most at risk — hole-heavy streams,
empty and single-block edges — plus the ``.bpack`` on-disk format, the
zero-copy sweep fan-out (``pack_dir``/payload resolution), the
engine-keyed memo, and the ``--engine``/``--pack-cache`` CLI plumbing.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.cache.policies import WRITE_THROUGH
from repro.cache.stream import Invalidation, Transfer, build_stream
from repro.cache.sweep import (
    block_size_sweep,
    cache_size_policy_sweep,
    paging_comparison,
)
from repro.cli.main import main
from repro.corpus import (
    CorpusReader,
    pack_trace,
    segment_pack_path,
    write_segment_packs,
)
from repro.fuzz.gen import random_trace
from repro.parallel.bpack import (
    BpackError,
    cached_bpack,
    read_bpack,
    write_bpack,
)
from repro.parallel.executor import resolve_payload
from repro.parallel.packed import cached_packed_stream, pack_stream
from repro.parallel.stack import simulate_stack
from repro.parallel.veccache import (
    replay_packed,
    simulate_packed_numpy,
    stack_curve,
    stack_curve_numpy,
)
from repro.trace.npview import current_engine, engine_context, numpy_available

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable"
)

SIZES = (4096, 8 * 4096, 64 * 4096)
KNOBS = (
    {},
    {"read_elision": False},
    {"invalidate_on_delete": False},
    {"read_elision": False, "invalidate_on_delete": False},
)


def _hole_heavy_stream():
    """Unlink/truncation-dominated: more invalidation rows than access
    rows, files deleted mid-flight and immediately recreated, truncation
    points walking through partially-cached files.  This maximizes hole
    traffic on the oracle stack — exactly where the vectorized
    removal-sequence reconstruction can go wrong."""
    items = []
    t = 0.0
    for i in range(160):
        fid = i % 5
        end = 4096 * (1 + (i * 7) % 9)
        items.append(
            Transfer(time=t, file_id=fid, user_id=1 + i % 2,
                     start=(i % 3) * 4096, end=end, is_write=i % 4 != 1)
        )
        t += 1.0
        # Two invalidations per access on average: a truncation to a
        # moving point, then every third round a full unlink.
        items.append(
            Invalidation(time=t, file_id=fid, from_byte=((i * 5) % 7) * 4096)
        )
        t += 0.25
        if i % 3 == 0:
            items.append(Invalidation(time=t, file_id=fid, from_byte=0))
            t += 0.25
        if i % 11 == 0:  # a file nobody cached, then its unlink
            items.append(
                Invalidation(time=t, file_id=100 + i, from_byte=0)
            )
            t += 0.25
    return items


def _assert_curves_identical(packed, sizes, **kwargs):
    ref = simulate_stack(packed, sizes, WRITE_THROUGH, **kwargs)
    fast = stack_curve_numpy(packed, sizes, WRITE_THROUGH, **kwargs)
    for size in sizes:
        assert fast.metrics(size) == ref.metrics(size), f"size={size}"
        assert fast.checkpoint(size) == ref.checkpoint(size), f"size={size}"


# ---------------------------------------------------------------------------
# Hole-heavy and edge-case differentials
# ---------------------------------------------------------------------------


@needs_numpy
class TestHoleHeavyDifferential:
    @pytest.mark.parametrize("kwargs", KNOBS)
    def test_matches_oracle_across_knobs(self, kwargs):
        packed = pack_stream(_hole_heavy_stream(), 4096)
        _assert_curves_identical(packed, SIZES, **kwargs)

    def test_matches_oracle_with_checkpoint(self):
        packed = pack_stream(_hole_heavy_stream(), 4096)
        mid = packed.times[len(packed) // 2]
        _assert_curves_identical(packed, SIZES, checkpoint_time=mid)

    def test_random_traces_with_small_caches(self):
        # Tiny caches keep the stack boundaries inside the hole churn.
        sizes = tuple(c * 512 for c in (1, 2, 3, 7, 50))
        for seed in range(4):
            log = random_trace(random.Random(f"veccache:{seed}"), 300)
            packed = pack_stream(
                build_stream(log), 512, start_time=log.start_time
            )
            _assert_curves_identical(packed, sizes)


@needs_numpy
class TestEdgeCases:
    def test_empty_stream(self):
        packed = pack_stream([], 4096)
        _assert_curves_identical(packed, SIZES)
        run = simulate_packed_numpy(packed, 4096, WRITE_THROUGH)
        assert run.metrics.read_accesses == 0
        assert run.metrics.disk_reads == 0

    def test_invalidations_only(self):
        items = [
            Invalidation(time=float(i), file_id=i % 3, from_byte=0)
            for i in range(20)
        ]
        packed = pack_stream(items, 4096)
        assert packed.n_accesses == 0
        _assert_curves_identical(packed, SIZES)

    def test_single_block_single_access(self):
        items = [Transfer(time=0.0, file_id=1, user_id=1,
                          start=0, end=100, is_write=False)]
        packed = pack_stream(items, 4096)
        _assert_curves_identical(packed, (4096,))
        run = simulate_packed_numpy(packed, 4096, WRITE_THROUGH)
        assert run.metrics.disk_reads == 1

    def test_one_block_cache_thrash(self):
        # Alternating keys through a one-block cache: every access
        # misses and evicts; depth bookkeeping has no slack here.
        items = [
            Transfer(time=float(i), file_id=i % 2, user_id=1,
                     start=0, end=100, is_write=False)
            for i in range(30)
        ]
        packed = pack_stream(items, 4096)
        _assert_curves_identical(packed, (4096, 2 * 4096))


# ---------------------------------------------------------------------------
# Dispatchers and the ambient engine
# ---------------------------------------------------------------------------


class TestDispatch:
    def test_python_engine_is_the_oracle(self):
        packed = pack_stream(_hole_heavy_stream(), 4096)
        ref = simulate_stack(packed, SIZES, WRITE_THROUGH)
        got = stack_curve(packed, SIZES, WRITE_THROUGH, engine="python")
        for size in SIZES:
            assert got.metrics(size) == ref.metrics(size)

    @needs_numpy
    def test_auto_engine_matches_python(self):
        packed = pack_stream(_hole_heavy_stream(), 4096)
        for size in SIZES:
            assert (
                stack_curve(packed, SIZES, engine="auto").metrics(size)
                == stack_curve(packed, SIZES, engine="python").metrics(size)
            )

    def test_replay_stateful_policy_falls_back(self):
        from repro.cache.policies import DELAYED_WRITE
        from repro.parallel.packed import simulate_packed

        packed = pack_stream(_hole_heavy_stream(), 4096)
        ref = simulate_packed(packed, 8 * 4096, DELAYED_WRITE, flush_epoch=0.0)
        got = replay_packed(packed, 8 * 4096, DELAYED_WRITE, flush_epoch=0.0)
        assert got == ref

    @needs_numpy
    def test_simulate_packed_numpy_rejects_stateful(self):
        from repro.analysis.vectorized import VectorFallback
        from repro.cache.policies import DELAYED_WRITE

        packed = pack_stream(_hole_heavy_stream(), 4096)
        with pytest.raises(VectorFallback):
            simulate_packed_numpy(packed, 8 * 4096, DELAYED_WRITE)

    def test_engine_context_is_ambient_and_restored(self):
        assert current_engine() == "auto"
        with engine_context("python"):
            assert current_engine() == "python"
            with engine_context("numpy"):
                assert current_engine() == "numpy"
            assert current_engine() == "python"
        assert current_engine() == "auto"

    def test_engine_context_rejects_unknown(self):
        with pytest.raises(ValueError):
            with engine_context("fortran"):
                pass


# ---------------------------------------------------------------------------
# Engine-keyed packed-stream memo
# ---------------------------------------------------------------------------


class TestEngineKeyedMemo:
    def test_same_engine_shares_one_entry(self, small_trace):
        a = cached_packed_stream(small_trace, 4096, engine="python")
        assert cached_packed_stream(small_trace, 4096, engine="python") is a

    @needs_numpy
    def test_engines_never_collapse(self, small_trace):
        py = cached_packed_stream(small_trace, 4096, engine="python")
        fast = cached_packed_stream(small_trace, 4096, engine="numpy")
        assert fast is not py  # differential harness keeps two sides
        assert fast == py  # ... which are bit-identical by contract

    @needs_numpy
    def test_auto_shares_the_resolved_entry(self, small_trace):
        fast = cached_packed_stream(small_trace, 4096, engine="numpy")
        assert cached_packed_stream(small_trace, 4096, engine="auto") is fast


# ---------------------------------------------------------------------------
# .bpack on-disk format
# ---------------------------------------------------------------------------


class TestBpack:
    @pytest.fixture()
    def packed(self):
        return pack_stream(_hole_heavy_stream(), 4096)

    def test_round_trip(self, tmp_path, packed):
        path = tmp_path / "s.bpack"
        write_bpack(packed, path)
        got = read_bpack(path)
        assert got == packed
        assert got.n_accesses == packed.n_accesses
        assert got.start_time == packed.start_time

    def test_round_trip_empty(self, tmp_path):
        path = tmp_path / "empty.bpack"
        empty = pack_stream([], 4096)
        write_bpack(empty, path)
        assert read_bpack(path) == empty

    def test_replay_from_disk_matches_memory(self, tmp_path, packed):
        path = tmp_path / "s.bpack"
        write_bpack(packed, path)
        disk = read_bpack(path)
        ref = simulate_stack(packed, SIZES, WRITE_THROUGH)
        got = simulate_stack(disk, SIZES, WRITE_THROUGH)
        for size in SIZES:
            assert got.metrics(size) == ref.metrics(size)

    def test_truncated_file_rejected(self, tmp_path, packed):
        path = tmp_path / "s.bpack"
        write_bpack(packed, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(BpackError):
            read_bpack(path)

    def test_bad_magic_rejected(self, tmp_path, packed):
        path = tmp_path / "s.bpack"
        write_bpack(packed, path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(BpackError):
            read_bpack(path)

    def test_corrupt_body_fails_crc(self, tmp_path, packed):
        path = tmp_path / "s.bpack"
        write_bpack(packed, path)
        data = bytearray(path.read_bytes())
        data[60] ^= 0x01  # inside the keys column
        path.write_bytes(bytes(data))
        with pytest.raises(BpackError):
            read_bpack(path)

    def test_cached_bpack_identity_and_staleness(self, tmp_path, packed):
        path = tmp_path / "s.bpack"
        write_bpack(packed, path)
        a = cached_bpack(path)
        assert cached_bpack(path) is a
        smaller = pack_stream(_hole_heavy_stream()[:40], 4096)
        write_bpack(smaller, path)  # different size + mtime
        b = cached_bpack(path)
        assert b is not a
        assert b == smaller


# ---------------------------------------------------------------------------
# Corpus shards
# ---------------------------------------------------------------------------


class TestSegmentPacks:
    @pytest.fixture()
    def corpus(self, tmp_path):
        log = random_trace(random.Random("packs"), 400)
        dest = tmp_path / "t.bcorpus"
        pack_trace(log, dest, segment_events=64)
        return dest

    def test_one_shard_per_segment(self, corpus, tmp_path):
        paths = write_segment_packs(corpus, 4096, tmp_path / "packs")
        with CorpusReader(corpus) as reader:
            assert len(paths) == reader.segment_count
            cols = reader.segment(0)
            expected = segment_pack_path(tmp_path / "packs", cols.name, 0, 4096)
            log0 = cols.to_log()
        assert paths[0] == expected
        ref = pack_stream(
            build_stream(log0), 4096, start_time=log0.start_time
        )
        assert read_bpack(paths[0]) == ref

    def test_rerun_is_idempotent(self, corpus, tmp_path):
        out = tmp_path / "packs"
        paths = write_segment_packs(corpus, 4096, out)
        stamps = [os.stat(p).st_mtime_ns for p in paths]
        assert write_segment_packs(corpus, 4096, out) == paths
        assert [os.stat(p).st_mtime_ns for p in paths] == stamps
        rewritten = write_segment_packs(corpus, 4096, out, overwrite=True)
        assert rewritten == paths
        assert read_bpack(paths[0]) is not None


# ---------------------------------------------------------------------------
# Zero-copy sweep fan-out
# ---------------------------------------------------------------------------

SWEEP_SIZES = (64 * 1024, 394 * 1024)


class TestSweepFanout:
    @pytest.mark.parametrize("engine", ["python", "numpy"])
    def test_policy_sweep_parity(self, small_trace, tmp_path, engine):
        if engine == "numpy" and not numpy_available():
            pytest.skip("numpy unavailable")
        serial = cache_size_policy_sweep(
            small_trace, cache_sizes=SWEEP_SIZES, jobs=1
        )
        packed = cache_size_policy_sweep(
            small_trace, cache_sizes=SWEEP_SIZES, jobs=2,
            engine=engine, pack_dir=tmp_path,
        )
        assert packed.results == serial.results
        assert any(p.endswith(".bpack") for p in os.listdir(tmp_path))

    def test_block_size_sweep_parity(self, small_trace, tmp_path):
        serial = block_size_sweep(
            small_trace, block_sizes=(1024, 4096),
            cache_sizes=SWEEP_SIZES, jobs=1,
        )
        packed = block_size_sweep(
            small_trace, block_sizes=(1024, 4096),
            cache_sizes=SWEEP_SIZES, jobs=2, pack_dir=tmp_path,
        )
        assert packed.results == serial.results
        assert packed.no_cache == serial.no_cache

    def test_paging_comparison_parity(self, small_trace, tmp_path):
        serial = paging_comparison(
            small_trace, cache_sizes=SWEEP_SIZES, jobs=1
        )
        packed = paging_comparison(
            small_trace, cache_sizes=SWEEP_SIZES, jobs=2, pack_dir=tmp_path
        )
        assert packed.ignored == serial.ignored
        assert packed.simulated == serial.simulated

    def test_pack_dir_reused_across_runs(self, small_trace, tmp_path):
        cache_size_policy_sweep(
            small_trace, cache_sizes=SWEEP_SIZES[:1], jobs=2,
            pack_dir=tmp_path,
        )
        shards = sorted(tmp_path.iterdir())
        stamps = [s.stat().st_mtime_ns for s in shards]
        cache_size_policy_sweep(
            small_trace, cache_sizes=SWEEP_SIZES[:1], jobs=2,
            pack_dir=tmp_path,
        )
        assert sorted(tmp_path.iterdir()) == shards
        assert [s.stat().st_mtime_ns for s in shards] == stamps

    def test_resolve_payload_protocol(self):
        class Plain:
            pass

        plain = Plain()
        assert resolve_payload(plain) is plain
        assert resolve_payload(None) is None

        class Deferred:
            def __payload_resolve__(self):
                return {"resolved": True}

        assert resolve_payload(Deferred()) == {"resolved": True}


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("veccache_cli") / "a5.trace"
    rc = main(["generate", "--profile", "A5", "--hours", "0.2",
               "--seed", "3", "-o", str(path)])
    assert rc == 0
    return str(path)


class TestCLIEngine:
    def test_sweep_engine_and_pack_cache(self, trace_file, tmp_path, capsys):
        pack_dir = tmp_path / "packs"
        assert main(["sweep", trace_file, "--kind", "policy", "--jobs", "2",
                     "--engine", "python",
                     "--pack-cache", str(pack_dir)]) == 0
        assert "write-through" in capsys.readouterr().out
        assert any(
            name.endswith(".bpack") for name in os.listdir(pack_dir)
        )

    @needs_numpy
    def test_sweep_numpy_engine_matches_python(self, trace_file, capsys):
        assert main(["sweep", trace_file, "--kind", "policy", "--jobs", "2",
                     "--engine", "numpy"]) == 0
        fast = capsys.readouterr().out
        assert main(["sweep", trace_file, "--kind", "policy", "--jobs", "2",
                     "--engine", "python"]) == 0
        assert capsys.readouterr().out == fast

    def test_experiment_engine_flag(self, trace_file, capsys):
        assert main(["experiment", trace_file, "--id", "table6",
                     "--jobs", "2", "--engine", "python"]) == 0

    def test_rejects_unknown_engine(self, trace_file):
        with pytest.raises(SystemExit):
            main(["sweep", trace_file, "--kind", "policy",
                  "--engine", "fortran"])
