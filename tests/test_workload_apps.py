"""Tests for the application models: each activity must run cleanly and
leave the access shape it claims (whole-file, append, scattered, ...)."""

import random

import pytest

from repro.analysis.accesses import reconstruct_accesses
from repro.clock import Clock
from repro.trace.records import AccessMode
from repro.trace.validate import validate
from repro.unixfs.filesystem import FileSystem
from repro.unixfs.geometry import Geometry
from repro.unixfs.tracer import KernelTracer
from repro.workload.apps import ACTIVITIES
from repro.workload.apps.base import (
    AppContext,
    append_file,
    read_at,
    read_prefix,
    read_scattered,
    read_whole,
    update_in_place,
    write_whole,
)
from repro.workload.apps.statusdaemon import status_daemon
from repro.workload.engine import Engine
from repro.workload.namespace import NamespaceConfig, build_namespace


@pytest.fixture
def world():
    """A small populated world: (fs, tracer, ctx, engine, clock)."""
    clock = Clock()
    fs = FileSystem(
        clock=clock, geometry=Geometry(total_bytes=256 * 1024 * 1024)
    )
    rng = random.Random(11)
    ns = build_namespace(fs, NamespaceConfig(n_users=3), rng)
    tracer = KernelTracer(name="apps")
    fs.tracer = tracer
    ctx = AppContext(fs=fs, ns=ns, rng=rng, uid=1, clock=clock)
    return fs, tracer, ctx, Engine(clock), clock


def run_activity(world, gen):
    _fs, tracer, _ctx, engine, _clock = world
    engine.spawn(gen)
    engine.run(until=100_000.0)
    return tracer.log


class TestHelpers:
    def test_read_whole_is_whole_file(self, world):
        fs, tracer, ctx, engine, _ = world
        log = run_activity(world, read_whole(ctx, ctx.ns.headers[0]))
        (access,) = reconstruct_accesses(log)
        assert access.whole_file
        assert access.mode is AccessMode.READ

    def test_write_whole_is_whole_file_write(self, world):
        _fs, _tracer, ctx, _engine, _ = world
        log = run_activity(world, write_whole(ctx, "/tmp/out", 9000))
        (access,) = reconstruct_accesses(log)
        assert access.whole_file
        assert access.created
        assert access.bytes_transferred == 9000

    def test_append_is_sequential_with_one_seek(self, world):
        _fs, _tracer, ctx, _engine, _ = world
        log = run_activity(world, append_file(ctx, ctx.ns.mailboxes[2], 500))
        (access,) = reconstruct_accesses(log)
        assert access.sequential
        assert not access.whole_file
        assert access.seeks == 1
        assert access.bytes_transferred == 500

    def test_read_at_is_seek_then_sequential(self, world):
        _fs, _tracer, ctx, _engine, _ = world
        log = run_activity(
            world, read_at(ctx, ctx.ns.admin_files[0], 100_000, 2048)
        )
        (access,) = reconstruct_accesses(log)
        assert access.sequential
        assert access.seeks == 1
        assert access.bytes_transferred == 2048

    def test_read_prefix_stops_on_chunk_boundary(self, world):
        _fs, _tracer, ctx, _engine, _ = world
        log = run_activity(world, read_prefix(ctx, ctx.ns.admin_files[0], 5000))
        (access,) = reconstruct_accesses(log)
        assert access.bytes_transferred == 8192  # rounded up to 2 chunks
        assert access.sequential

    def test_read_scattered_is_non_sequential(self, world):
        _fs, _tracer, ctx, _engine, _ = world
        log = run_activity(
            world, read_scattered(ctx, ctx.ns.libraries[0], picks=4)
        )
        (access,) = reconstruct_accesses(log)
        assert access.seeks >= 3
        assert not access.sequential or len(access.runs) <= 1

    def test_update_in_place_is_read_write(self, world):
        _fs, _tracer, ctx, _engine, _ = world
        log = run_activity(
            world, update_in_place(ctx, ctx.ns.admin_files[0], touches=3)
        )
        (access,) = reconstruct_accesses(log)
        assert access.mode is AccessMode.READ_WRITE
        assert not access.sequential


class TestActivities:
    @pytest.mark.parametrize("name", sorted(ACTIVITIES))
    def test_activity_runs_and_trace_validates(self, world, name):
        _fs, tracer, ctx, engine, _ = world
        engine.spawn(ACTIVITIES[name](ctx))
        engine.run(until=100_000.0)
        report = validate(tracer.log)
        assert report.ok, report.problems
        assert report.unmatched_opens == 0

    def test_compile_deletes_its_assembler_temp(self, world):
        fs, tracer, ctx, engine, _ = world
        engine.spawn(ACTIVITIES["compile"](ctx))
        engine.run(until=100_000.0)
        assert tracer.log.count("unlink") >= 1
        assert not [p for p in fs.listdir("/tmp") if p.startswith("ctm")]

    def test_compile_execs_compiler_passes(self, world):
        _fs, tracer, ctx, engine, _ = world
        engine.spawn(ACTIVITIES["compile"](ctx))
        engine.run(until=100_000.0)
        assert tracer.log.count("exec") >= 2

    def test_edit_session_leaves_no_scratch(self, world):
        fs, _tracer, ctx, engine, _ = world
        engine.spawn(ACTIVITIES["edit"](ctx))
        engine.run(until=100_000.0)
        assert not [p for p in fs.listdir("/tmp") if p.startswith("Ex")]

    def test_edit_session_closed_cleanly_at_horizon(self, world):
        # Kill the session mid-edit: the finally block must close and
        # remove the scratch file.
        fs, tracer, ctx, engine, _ = world
        engine.spawn(ACTIVITIES["edit"](ctx))
        engine.run(until=0.5)  # way before the session finishes
        assert validate(tracer.log).unmatched_opens == 0

    def test_status_daemon_rewrites_every_host_file(self, world):
        _fs, tracer, ctx, engine, _ = world
        engine.spawn(status_daemon(ctx, period=180.0))
        engine.run(until=200.0)
        opens = [e for e in tracer.log.of_kind("open") if e.created]
        assert len(opens) >= len(ctx.ns.status_files)

    def test_status_daemon_lifetimes_cluster_at_period(self, world):
        from repro.analysis.lifetimes import collect_lifetimes

        _fs, tracer, ctx, engine, _ = world
        engine.spawn(status_daemon(ctx, period=180.0))
        engine.run(until=800.0)
        lifetimes = [
            lt.lifetime
            for lt in collect_lifetimes(tracer.log)
            if lt.lifetime is not None
        ]
        assert lifetimes
        in_band = sum(1 for lt in lifetimes if 178.0 <= lt <= 182.0)
        assert in_band / len(lifetimes) > 0.9

    def test_print_file_spool_cycle(self, world):
        fs, tracer, ctx, engine, _ = world
        engine.spawn(ACTIVITIES["print"](ctx))
        engine.run(until=100_000.0)
        assert fs.listdir("/usr/spool/lpd") == []
        assert tracer.log.count("unlink") == 1

    def test_read_mail_may_truncate(self, world):
        # With enough repetitions the 15% truncate branch fires.
        _fs, tracer, ctx, engine, _ = world
        for _ in range(40):
            engine.spawn(ACTIVITIES["read_mail"](ctx))
        engine.run(until=1_000_000.0)
        assert tracer.log.count("trunc") >= 1
