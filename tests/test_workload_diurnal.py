"""Tests for the diurnal (day/night) load modulation."""

import dataclasses

import pytest

from repro.workload.distributions import DiurnalPattern
from repro.workload.generator import generate_trace
from repro.workload.profiles import UCBARPA


class TestPattern:
    def test_peak_multiplier_is_one(self):
        pattern = DiurnalPattern(peak_hour=15.0, night_slowdown=8.0)
        assert pattern.think_multiplier(15 * 3600.0) == pytest.approx(1.0)

    def test_trough_multiplier_is_slowdown(self):
        pattern = DiurnalPattern(peak_hour=15.0, night_slowdown=8.0)
        assert pattern.think_multiplier(3 * 3600.0) == pytest.approx(8.0)

    def test_multiplier_bounded_everywhere(self):
        pattern = DiurnalPattern(night_slowdown=5.0)
        for hour in range(0, 48):
            m = pattern.think_multiplier(hour * 3600.0)
            assert 1.0 <= m <= 5.0

    def test_periodicity(self):
        pattern = DiurnalPattern()
        assert pattern.think_multiplier(7 * 3600.0) == pytest.approx(
            pattern.think_multiplier((7 + 24) * 3600.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalPattern(night_slowdown=0.5)
        with pytest.raises(ValueError):
            DiurnalPattern(day_seconds=0)


class TestGeneratedRhythm:
    def test_daytime_busier_than_night(self):
        profile = dataclasses.replace(
            UCBARPA,
            n_users=12,
            namespace=None,
            diurnal=DiurnalPattern(peak_hour=15.0, night_slowdown=8.0),
        )
        log = generate_trace(profile, seed=5, duration=24 * 3600.0)
        afternoon = len(log.slice(13 * 3600.0, 17 * 3600.0).events)
        night = len(log.slice(1 * 3600.0, 5 * 3600.0).events)
        assert afternoon > 1.6 * night

    def test_flat_without_pattern(self):
        log = generate_trace(
            dataclasses.replace(UCBARPA, n_users=12, namespace=None),
            seed=5,
            duration=8 * 3600.0,
        )
        first = len(log.slice(0, 4 * 3600.0).events)
        second = len(log.slice(4 * 3600.0, 8 * 3600.0).events)
        assert 0.6 < first / second < 1.6
