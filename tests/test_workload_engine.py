"""Tests for the discrete-event engine and distributions."""

import random

import pytest

from repro.clock import Clock
from repro.workload.distributions import (
    BurstyThinkTime,
    Mixture,
    WeightedChoice,
    bounded_exponential,
    bounded_lognormal,
    zipf_weights,
)
from repro.workload.engine import Engine


class TestEngine:
    def test_processes_interleave_by_time(self):
        clock = Clock()
        order = []

        def proc(name, delays):
            for d in delays:
                order.append((name, clock.now()))
                yield d
            order.append((name, clock.now()))

        engine = Engine(clock)
        engine.spawn(proc("a", [2.0, 2.0]))
        engine.spawn(proc("b", [3.0]))
        engine.run(until=10.0)
        assert order == [
            ("a", 0.0), ("b", 0.0), ("a", 2.0), ("b", 3.0), ("a", 4.0),
        ]

    def test_spawn_delay(self):
        clock = Clock()
        seen = []

        def proc():
            seen.append(clock.now())
            yield 0.0

        engine = Engine(clock)
        engine.spawn(proc(), delay=5.0)
        engine.run(until=10.0)
        assert seen == [5.0]

    def test_horizon_stops_and_advances_clock(self):
        clock = Clock()

        def proc():
            while True:
                yield 1.0

        engine = Engine(clock)
        engine.spawn(proc())
        engine.run(until=7.5)
        assert clock.now() == pytest.approx(7.5)
        assert engine.pending == 0

    def test_processes_closed_at_horizon(self):
        clock = Clock()
        cleaned = []

        def proc():
            try:
                while True:
                    yield 100.0
            finally:
                cleaned.append(True)

        engine = Engine(clock)
        engine.spawn(proc())
        engine.run(until=10.0)
        assert cleaned == [True]

    def test_negative_yield_rejected(self):
        clock = Clock()

        def proc():
            yield -1.0

        engine = Engine(clock)
        engine.spawn(proc())
        with pytest.raises(ValueError, match="delay"):
            engine.run(until=10.0)

    def test_negative_spawn_delay_rejected(self):
        engine = Engine(Clock())
        with pytest.raises(ValueError):
            engine.spawn(iter(()), delay=-1.0)

    def test_same_time_fifo(self):
        clock = Clock()
        order = []

        def proc(name):
            order.append(name)
            yield 0.0
            order.append(name)

        engine = Engine(clock)
        engine.spawn(proc("a"))
        engine.spawn(proc("b"))
        engine.run(until=1.0)
        assert order == ["a", "b", "a", "b"]

    def test_resumption_counter(self):
        clock = Clock()

        def proc():
            yield 1.0
            yield 1.0

        engine = Engine(clock)
        engine.spawn(proc())
        engine.run(until=10.0)
        assert engine.resumptions == 3  # start + two resumes (last raises StopIteration)


class TestClock:
    def test_advance_and_set(self):
        clock = Clock()
        clock.advance(2.5)
        clock.set(4.0)
        assert clock.now() == 4.0
        assert clock() == 4.0

    def test_backwards_rejected(self):
        clock = Clock(start=5.0)
        with pytest.raises(ValueError):
            clock.set(1.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestDistributions:
    def test_bounded_lognormal_respects_bounds(self, rng):
        for _ in range(200):
            v = bounded_lognormal(rng, median=1000, sigma=2.0, low=10, high=5000)
            assert 10 <= v <= 5000

    def test_bounded_lognormal_bad_bounds(self, rng):
        with pytest.raises(ValueError):
            bounded_lognormal(rng, 100, 1.0, low=10, high=5)

    def test_bounded_exponential(self, rng):
        for _ in range(200):
            assert 0.5 <= bounded_exponential(rng, 2.0, low=0.5, high=10) <= 10

    def test_weighted_choice_respects_weights(self, rng):
        choice = WeightedChoice([("a", 0.0), ("b", 1.0)])
        assert all(choice.sample(rng) == "b" for _ in range(50))

    def test_weighted_choice_validation(self):
        with pytest.raises(ValueError):
            WeightedChoice([])
        with pytest.raises(ValueError):
            WeightedChoice([("a", -1.0)])
        with pytest.raises(ValueError):
            WeightedChoice([("a", 0.0)])

    def test_mixture_samples_components(self, rng):
        mix = Mixture([(1.0, lambda r: 1.0), (1.0, lambda r: 2.0)])
        values = {mix.sample(rng) for _ in range(100)}
        assert values == {1.0, 2.0}

    def test_bursty_think_time_bimodal(self):
        rng = random.Random(5)
        think = BurstyThinkTime(burst_mean=1.0, idle_mean=1000.0, idle_prob=0.5)
        samples = [think.sample(rng) for _ in range(500)]
        assert min(samples) >= think.minimum
        assert any(s > 100 for s in samples)
        assert any(s < 5 for s in samples)

    def test_zipf_weights_decreasing_and_positive(self):
        weights = zipf_weights(10, skew=1.0)
        assert weights == sorted(weights, reverse=True)
        assert all(w > 0 for w in weights)
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_determinism_with_same_seed(self):
        a = [bounded_lognormal(random.Random(3), 100, 1.0, 1, 1e6) for _ in range(5)]
        b = [bounded_lognormal(random.Random(3), 100, 1.0, 1, 1e6) for _ in range(5)]
        assert a == b
