"""Tests for namespace building, profiles and the trace generator."""

import random

import pytest

from repro.clock import Clock
from repro.trace.records import OpenEvent
from repro.trace.validate import validate
from repro.unixfs.filesystem import FileSystem
from repro.unixfs.geometry import Geometry
from repro.workload.distributions import BurstyThinkTime
from repro.trace.io_binary import read_binary, write_binary
from repro.workload.generator import (
    SpoolSummary,
    generate,
    generate_many,
    generate_trace,
)
from repro.workload.namespace import NamespaceConfig, build_namespace
from repro.workload.profiles import PROFILES, UCBARPA, UCBCAD, UCBERNIE, MachineProfile


@pytest.fixture
def built():
    fs = FileSystem(
        clock=Clock(), geometry=Geometry(total_bytes=256 * 1024 * 1024)
    )
    ns = build_namespace(fs, NamespaceConfig(n_users=4), random.Random(3))
    return fs, ns


class TestNamespace:
    def test_all_categories_populated(self, built):
        _fs, ns = built
        cfg = ns.config
        assert len(ns.commands) == cfg.commands
        assert len(ns.headers) == cfg.headers
        assert len(ns.libraries) == cfg.libraries
        assert len(ns.admin_files) == cfg.admin_files
        assert len(ns.status_files) == cfg.hosts
        assert set(ns.etc_files) >= {"passwd", "termcap", "motd"}
        for uid in range(1, 5):
            assert len(ns.sources[uid]) == cfg.sources_per_user
            assert len(ns.docs[uid]) == cfg.docs_per_user
            assert uid in ns.mailboxes

    def test_every_path_exists_on_fs(self, built):
        fs, ns = built
        paths = (
            ns.commands + ns.headers + ns.libraries + ns.admin_files
            + ns.status_files + list(ns.etc_files.values())
        )
        for uid in ns.sources:
            paths += ns.sources[uid] + ns.docs[uid] + [ns.mailboxes[uid]]
        for path in paths:
            assert fs.exists(path), path

    def test_admin_files_are_about_a_megabyte(self, built):
        fs, ns = built
        for path in ns.admin_files:
            assert fs.stat(path).size == 1024 * 1024

    def test_popular_picks_are_skewed(self, built):
        _fs, ns = built
        rng = random.Random(0)
        picks = [ns.pick_command(rng) for _ in range(500)]
        counts = sorted(
            (picks.count(c) for c in set(picks)), reverse=True
        )
        assert counts[0] > 5 * counts[-1]

    def test_pick_headers_unique(self, built):
        _fs, ns = built
        rng = random.Random(0)
        headers = ns.pick_headers(rng, 8)
        assert len(headers) == len(set(headers)) == 8

    def test_admin_hotspot_offsets_within_file(self, built):
        _fs, ns = built
        rng = random.Random(0)
        for path in ns.admin_files:
            for _ in range(50):
                assert 0 <= ns.pick_admin_offset(rng, path) < 1024 * 1024


class TestProfiles:
    @pytest.mark.parametrize("profile", [UCBARPA, UCBERNIE, UCBCAD],
                             ids=lambda p: p.name)
    def test_mix_weights_sum_to_one(self, profile):
        assert sum(w for _n, w in profile.activity_mix) == pytest.approx(1.0)

    def test_buffer_cache_is_tenth_of_memory(self):
        assert UCBARPA.buffer_cache_bytes == UCBARPA.memory_bytes // 10

    def test_lookup_by_trace_and_machine_name(self):
        assert PROFILES["A5"] is PROFILES["ucbarpa"]
        assert PROFILES["C4"].name == "ucbcad"

    def test_namespace_user_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MachineProfile(
                name="x", trace_name="X", description="", n_users=5,
                memory_bytes=1 << 20,
                activity_mix=(("shell", 1.0),),
                think=BurstyThinkTime(),
                namespace=NamespaceConfig(n_users=3),
            )


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        a = generate_trace(UCBARPA, seed=5, duration=300.0)
        b = generate_trace(UCBARPA, seed=5, duration=300.0)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = generate_trace(UCBARPA, seed=5, duration=300.0)
        b = generate_trace(UCBARPA, seed=6, duration=300.0)
        assert a.events != b.events

    def test_trace_validates_and_spans_duration(self, small_trace):
        assert validate(small_trace).ok
        assert small_trace.end_time <= 1200.0 + 1e-6
        assert small_trace.duration > 600.0

    def test_trace_name_follows_profile(self, small_trace):
        assert small_trace.name == "A5"

    def test_setup_traffic_not_in_trace(self, small_trace):
        # The namespace is built before the tracer attaches, so the first
        # event should be user activity, not hundreds of creates at t=0.
        first_creates = [
            e for e in small_trace.events[:50]
            if isinstance(e, OpenEvent) and e.new_file
        ]
        assert len(first_creates) < 30

    def test_result_carries_system_state(self):
        result = generate(UCBARPA, seed=1, duration=60.0)
        assert result.fs.syscall_counts["open"] > 0
        assert result.engine_resumptions > 0
        assert result.profile is UCBARPA

    def test_all_three_profiles_generate(self):
        for profile in (UCBARPA, UCBERNIE, UCBCAD):
            log = generate_trace(profile, seed=2, duration=120.0)
            assert validate(log).ok
            assert len(log) > 0


class TestSpooledGeneration:
    def test_spool_writes_identical_file_with_bounded_memory(self, tmp_path):
        import io

        reference = generate(UCBARPA, seed=9, duration=300.0)
        path = tmp_path / "spooled.btrace"
        result = generate(UCBARPA, seed=9, duration=300.0, spool=str(path),
                          spool_buffer=64)
        assert result.trace is None
        assert result.spool_path == str(path)
        assert result.events_spooled == len(reference.trace)
        # O(buffer) memory: never more than the buffer resident at once.
        assert 0 < result.peak_buffered <= 64
        buf = io.BytesIO()
        write_binary(reference.trace, buf)
        assert path.read_bytes() == buf.getvalue()

    def test_spooled_trace_reads_back(self, tmp_path):
        path = tmp_path / "a.btrace"
        generate(UCBARPA, seed=4, duration=120.0, spool=str(path))
        log = read_binary(str(path))
        assert log.name == "A5"
        assert validate(log).ok


class TestGenerateMany:
    def test_parallel_matches_serial(self):
        pairs = [(UCBARPA, 1), (UCBERNIE, 1), (UCBARPA, 2)]
        serial = generate_many(pairs, duration=60.0, jobs=1)
        parallel = generate_many(pairs, duration=60.0, jobs=3)
        assert [t.events for t in serial] == [t.events for t in parallel]
        assert [t.name for t in serial] == ["A5", "E3", "A5"]

    def test_spooled_outputs(self, tmp_path):
        pairs = [(UCBARPA, 1), (UCBCAD, 2)]
        outputs = [str(tmp_path / "a.btrace"), str(tmp_path / "c.btrace")]
        summaries = generate_many(pairs, duration=60.0, jobs=2,
                                  outputs=outputs, spool_buffer=128)
        assert all(isinstance(s, SpoolSummary) for s in summaries)
        assert [s.trace_name for s in summaries] == ["A5", "C4"]
        assert [s.seed for s in summaries] == [1, 2]
        for summary, path in zip(summaries, outputs):
            assert summary.path == path
            log = read_binary(path)
            assert len(log) == summary.events
            assert summary.peak_buffered <= 128

    def test_output_count_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="outputs"):
            generate_many([(UCBARPA, 1)], outputs=[])


class TestCorpusSpool:
    """Generation straight into a sharded .bcorpus corpus."""

    def test_bcorpus_spool_bit_identical_to_in_memory(self, tmp_path):
        from repro.corpus import CorpusReader

        path = tmp_path / "a.bcorpus"
        result = generate(UCBARPA, seed=3, duration=120.0,
                          spool=str(path), spool_buffer=64)
        reference = generate(UCBARPA, seed=3, duration=120.0)
        assert result.events_spooled == len(reference.trace)
        assert 0 < result.peak_buffered <= 64
        assert result.segments_spooled == -(-len(reference.trace) // 64)
        with CorpusReader(path) as reader:
            assert reader.name == "A5"
            assert list(reader.iter_events()) == reference.trace.events
            reader.verify()

    def test_empty_generation_leaves_valid_corpus(self, tmp_path):
        # Zero-duration synthesis: the spool must still close into a
        # readable, empty corpus (the empty-segment-flush edge).
        from repro.corpus import CorpusReader

        path = tmp_path / "empty.bcorpus"
        result = generate(UCBARPA, seed=5, duration=0.0,
                          spool=str(path), spool_buffer=64)
        assert result.events_spooled == 0
        with CorpusReader(path) as reader:
            assert len(reader) == 0

    def test_buffer_boundary_off_by_one(self, tmp_path):
        # Spool with a buffer of exactly the event count, one less, and
        # one more: all must produce the same decoded events.
        from repro.corpus import CorpusReader

        reference = generate(UCBARPA, seed=6, duration=60.0)
        n = len(reference.trace)
        assert n > 2
        for buffer_events in (n - 1, n, n + 1):
            path = tmp_path / f"b{buffer_events}.bcorpus"
            generate(UCBARPA, seed=6, duration=60.0,
                     spool=str(path), spool_buffer=buffer_events)
            with CorpusReader(path) as reader:
                assert list(reader.iter_events()) == reference.trace.events

    def test_generate_many_mixed_sinks(self, tmp_path):
        from repro.corpus import CorpusReader

        pairs = [(UCBARPA, 1), (UCBCAD, 2)]
        outputs = [str(tmp_path / "a.bcorpus"), str(tmp_path / "c.btrace")]
        summaries = generate_many(pairs, duration=60.0, jobs=2,
                                  outputs=outputs, spool_buffer=64)
        assert [s.trace_name for s in summaries] == ["A5", "C4"]
        assert summaries[0].segments > 0
        assert summaries[1].segments == 0  # .btrace spool has no segments
        with CorpusReader(outputs[0]) as reader:
            assert len(reader) == summaries[0].events
        assert len(read_binary(outputs[1])) == summaries[1].events


class TestGenerateManyRejections:
    def test_duplicate_profile_seed_pairs_rejected(self):
        with pytest.raises(ValueError, match="identical traces"):
            generate_many([(UCBARPA, 1), (UCBARPA, 1)], duration=60.0)

    def test_same_profile_different_seeds_allowed(self):
        results = generate_many([(UCBARPA, 1), (UCBARPA, 2)], duration=60.0,
                                jobs=1)
        assert len(results) == 2

    def test_duplicate_output_paths_rejected(self, tmp_path):
        out = str(tmp_path / "same.btrace")
        with pytest.raises(ValueError, match="clobber"):
            generate_many([(UCBARPA, 1), (UCBCAD, 2)], duration=60.0,
                          outputs=[out, out])
